"""Tests for the Section 7 extensions: non-overlay (rewrite) mode and
latency-based path feedback."""

import pytest

from repro.core.clove import CloveEcnPolicy, CloveParams
from repro.core.latency import CloveLatencyPolicy
from repro.hypervisor.host import Host
from repro.hypervisor.policy import PathFeedback
from repro.net.packet import FlowKey
from repro.transport.tcp import open_connection

from tests.conftest import make_fabric
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine


def _rewrite_fabric(**topo_overrides):
    sim = Simulator()
    rng = RngRegistry(1)
    net = build_leaf_spine(sim, rng, LeafSpineConfig(hosts_per_leaf=2, **topo_overrides))
    hosts = {}
    policies = {}
    for name in sorted(net.hosts):
        policy = CloveEcnPolicy(CloveParams(flowlet_gap=1e-4))
        policies[name] = policy
        hosts[name] = Host(sim, net, name, policy, vswitch_mode="rewrite")
    return sim, net, hosts, policies


class TestRewriteMode:
    def test_transfer_completes_transparently(self):
        sim, net, hosts, policies = _rewrite_fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1234, 80)
        done = []
        connection.start_flow(300_000, lambda: done.append(sim.now))
        sim.run(until=2.0)
        assert done
        assert connection.receiver.rcv_nxt == 300_000

    def test_guest_sees_original_ports(self):
        sim, net, hosts, policies = _rewrite_fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1234, 80)
        seen_keys = []
        receiver = connection.receiver
        orig = receiver.on_packet
        def spy(packet):
            seen_keys.append(packet.inner)
            orig(packet)
        receiver.on_packet = spy
        hosts["h2_0"].register_endpoint(receiver.flow, receiver)
        connection.start_flow(20_000, lambda: None)
        sim.run(until=1.0)
        assert seen_keys
        assert all(k.src_port == 1234 for k in seen_keys)

    def test_wire_carries_rewritten_port(self):
        sim, net, hosts, policies = _rewrite_fabric()
        policies["h1_0"].set_paths(
            hosts["h2_0"].ip, [61001], [("p0",)]
        )
        wire_ports = []
        leaf = net.switches["L1"]
        orig_forward = leaf.forward
        def spy(packet, link_in):
            if packet.inner.dst_ip == hosts["h2_0"].ip and packet.payload_bytes > 0:
                wire_ports.append(packet.inner.src_port)
            orig_forward(packet, link_in)
        leaf.forward = spy
        leaf_handler_refresh = net.register_host_receiver  # no-op ref
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1234, 80)
        connection.start_flow(20_000, lambda: None)
        sim.run(until=1.0)
        # Switch-level traffic must carry the policy's port, not 1234.
        assert wire_ports
        assert all(p == 61001 for p in wire_ports)

    def test_ecn_echo_flows_in_rewrite_mode(self):
        sim, net, hosts, policies = _rewrite_fabric(ecn_threshold_packets=0)
        feedback = []
        policy = policies["h1_0"]
        orig = policy.on_path_feedback
        policy.on_path_feedback = lambda fb, now: (feedback.append(fb), orig(fb, now))
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1234, 80)
        connection.start_flow(100_000, lambda: None)
        sim.run(until=1.0)
        assert any(fb.congested for fb in feedback)

    def test_invalid_mode_rejected(self):
        sim, net, hosts = make_fabric()
        from repro.hypervisor.vswitch import VSwitch
        with pytest.raises(ValueError):
            VSwitch(sim, hosts["h1_0"], None, mode="tunnel")


class TestCloveLatency:
    def test_policy_flags(self):
        policy = CloveLatencyPolicy()
        assert policy.wants_latency
        assert not policy.wants_int
        assert policy.needs_discovery()

    def test_latency_echo_recorded(self):
        policies = {}

        def factory(name, index):
            policies[name] = CloveLatencyPolicy(CloveParams(flowlet_gap=1e-4))
            return policies[name]

        sim, net, hosts = make_fabric(policy_factory=factory)
        policy = policies["h1_0"]
        dst = hosts["h2_0"].ip
        policy.set_paths(dst, [50001, 50002], [("a",), ("b",)])
        policies["h2_0"].set_paths(hosts["h1_0"].ip, [50001], [("r",)])
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(200_000, lambda: None)
        sim.run(until=1.0)
        utils = [policy.weights.util_of(dst, p) for p in (50001, 50002)]
        assert any(u > 0 for u in utils), "no latency echoed back"
        # Echoed values are one-way delays: micro- to milli-seconds here.
        assert all(u < 0.1 for u in utils)

    def test_prefers_lower_latency_path(self):
        policy = CloveLatencyPolicy(CloveParams(flowlet_gap=1e-6, util_aging=1.0),
                                    local_bump=0.0)
        policy.set_paths(9, [1, 2], [("a",), ("b",)])
        policy.on_path_feedback(PathFeedback(9, 1, False, util=500e-6), now=0.0)
        policy.on_path_feedback(PathFeedback(9, 2, False, util=20e-6), now=0.0)
        flow = FlowKey(1, 9, 77, 80)
        from repro.net.packet import make_data_packet
        assert policy.select_source_port(flow, make_data_packet(flow, 0, 100, 0.0), 0.0) == 2

    def test_end_to_end_experiment(self):
        from repro import ExperimentConfig, run_experiment
        result = run_experiment(ExperimentConfig(
            scheme="clove-latency", load=0.4, jobs_per_client=5,
            clients_per_leaf=2, connections_per_client=1,
        ))
        assert result.collector.completion_rate == 1.0
