"""Direct unit tests for the Presto baseline policy (flowcell spraying)."""

import pytest

from repro.baselines.presto import FLOWCELL_BYTES, PrestoPolicy
from repro.net.packet import FlowKey, Packet

DST = 0x0A000002
FLOW = FlowKey(src_ip=0x0A000001, dst_ip=DST, src_port=10000, dst_port=80)


def _packet(payload=1000, seq=0):
    return Packet(FLOW, payload_bytes=payload, seq=seq)


def test_invalid_flowcell_size_rejected():
    with pytest.raises(ValueError, match="flowcell size"):
        PrestoPolicy(flowcell_bytes=0)
    with pytest.raises(ValueError, match="flowcell size"):
        PrestoPolicy(flowcell_bytes=-1)


def test_policy_contract_flags():
    policy = PrestoPolicy()
    assert policy.needs_reassembly
    assert policy.needs_discovery()
    assert policy.flowcell_bytes == FLOWCELL_BYTES


def test_flowcell_rotation_after_flowcell_bytes():
    policy = PrestoPolicy(flowcell_bytes=2000)
    policy.set_paths(DST, [1, 2, 3, 4])
    ports = []
    cell_ids = []
    for seq in range(8):
        pkt = _packet(payload=1000, seq=seq)
        ports.append(policy.select_source_port(FLOW, pkt, now=0.0))
        cell_ids.append(pkt.flowcell_id)
    # 1000B packets against a 2000B flowcell: rotate every two packets.
    assert cell_ids == [0, 0, 1, 1, 2, 2, 3, 3]
    assert policy.flowcells_started == 4
    # Within a flowcell the port is sticky; uniform WRR visits every path.
    assert ports[0] == ports[1] and ports[2] == ports[3]
    assert set(ports) == {1, 2, 3, 4}


def test_flowcell_seq_stamped_for_reassembly():
    policy = PrestoPolicy(flowcell_bytes=1500)
    policy.set_paths(DST, [1, 2])
    pkt = _packet(payload=1000, seq=42)
    policy.select_source_port(FLOW, pkt, now=0.0)
    assert pkt.flowcell_id == 0
    assert pkt.flowcell_seq == 42


def test_static_weights_drive_the_spray_ratio():
    policy = PrestoPolicy(flowcell_bytes=1, static_weights=[0.75, 0.25])
    policy.set_paths(DST, [1, 2])
    # flowcell_bytes=1: every packet starts a new flowcell.
    counts = {1: 0, 2: 0}
    for seq in range(200):
        port = policy.select_source_port(FLOW, _packet(seq=seq), now=0.0)
        counts[port] += 1
    assert counts[1] == 150
    assert counts[2] == 50


def test_weight_fn_models_ideal_static_weights():
    seen = {}

    def weight_fn(traces):
        seen["traces"] = tuple(traces)
        return [1.0, 0.0]

    policy = PrestoPolicy(flowcell_bytes=1, weight_fn=weight_fn)
    traces = [("L1", "S1", "L2"), ("L1", "S2", "L2")]
    policy.set_paths(DST, [1, 2], traces)
    assert seen["traces"] == tuple(traces)
    ports = {
        policy.select_source_port(FLOW, _packet(seq=s), now=0.0)
        for s in range(20)
    }
    assert ports == {1}


def test_static_weights_take_precedence_over_weight_fn():
    policy = PrestoPolicy(
        flowcell_bytes=1,
        static_weights=[0.0, 1.0],
        weight_fn=lambda traces: [1.0, 0.0],
    )
    policy.set_paths(DST, [1, 2], [("a",), ("b",)])
    ports = {
        policy.select_source_port(FLOW, _packet(seq=s), now=0.0)
        for s in range(20)
    }
    assert ports == {2}


def test_fallback_hashing_before_discovery():
    policy = PrestoPolicy()
    port = policy.select_source_port(FLOW, _packet(), now=0.0)
    assert 49152 <= port < 49152 + 16384
    # Deterministic per 5-tuple: the same flow hashes to the same port.
    assert policy.select_source_port(
        FLOW, _packet(seq=1), now=0.0
    ) == port
    other = FlowKey(FLOW.src_ip, FLOW.dst_ip, 10001, 80)
    ports = {
        policy.select_source_port(other, Packet(other, 10, seq=s), now=0.0)
        for s in range(1)
    }
    assert all(49152 <= p < 49152 + 16384 for p in ports)


def test_ports_for_reflects_discovery():
    policy = PrestoPolicy()
    assert policy.ports_for(DST) == []
    policy.set_paths(DST, [7, 8])
    assert sorted(policy.ports_for(DST)) == [7, 8]
