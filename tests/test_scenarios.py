"""Tests for the asymmetry-scenario helpers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine
from repro.topology.scenarios import (
    degrade_cable,
    effective_bisection,
    fail_spine_cable,
    flapping_cable,
    multi_failure,
)


def _net():
    sim = Simulator()
    net = build_leaf_spine(sim, RngRegistry(1), LeafSpineConfig(hosts_per_leaf=2))
    return sim, net


class TestScenarios:
    def test_fail_spine_cable_drops_bisection(self):
        sim, net = _net()
        before = effective_bisection(net)
        fail_spine_cable(net)
        assert effective_bisection(net) == pytest.approx(before * 0.75)

    def test_degrade_cable_halves_rate(self):
        sim, net = _net()
        degrade_cable(net, "L2", "S2", 0, factor=0.5)
        link = net.links[("L2", "S2")][0]
        assert link.rate_bps == pytest.approx(20e9)
        reverse = net.links[("S2", "L2")][0]
        assert reverse.rate_bps == pytest.approx(20e9)

    def test_degrade_invalid_factor(self):
        sim, net = _net()
        with pytest.raises(ValueError):
            degrade_cable(net, "L2", "S2", 0, factor=0.0)

    def test_flapping_schedule(self):
        sim, net = _net()
        flapping_cable(sim, net, "L2", "S2", period=0.2, downtime=0.05,
                       flaps=3, start=0.1)
        states = []
        for t in (0.12, 0.18, 0.32, 0.38, 0.52, 0.58):
            sim.run(until=t)
            states.append(net.links[("L2", "S2")][0].up)
        assert states == [False, True, False, True, False, True]

    def test_flapping_invalid_downtime(self):
        sim, net = _net()
        with pytest.raises(ValueError):
            flapping_cable(sim, net, "L2", "S2", period=0.1, downtime=0.2)

    def test_multi_failure(self):
        sim, net = _net()
        multi_failure(net, [("L2", "S2", 0), ("L2", "S2", 1)])
        assert not net.links[("S2", "L2")][0].up
        assert not net.links[("S2", "L2")][1].up
        # S2 is now fully cut off from L2; S1 still has both cables.
        assert effective_bisection(net) == pytest.approx(2 * 40e9)


class TestScenarioTrafficIntegration:
    def test_clove_survives_degraded_cable(self):
        from repro import ExperimentConfig
        from repro.harness.experiment import run_experiment

        def degrade(sim, net, hosts):
            degrade_cable(net, "L2", "S2", 0, factor=0.25)

        result = run_experiment(
            ExperimentConfig(scheme="clove-ecn", load=0.5, seed=3,
                             jobs_per_client=6, clients_per_leaf=3,
                             connections_per_client=1),
            on_ready=degrade,
        )
        assert result.collector.completion_rate == 1.0

    def test_clove_survives_flapping(self):
        from repro import ExperimentConfig
        from repro.harness.experiment import run_experiment

        def flap(sim, net, hosts):
            flapping_cable(sim, net, "L2", "S2", period=0.01,
                           downtime=0.004, flaps=3, start=0.025)

        result = run_experiment(
            ExperimentConfig(scheme="clove-ecn", load=0.4, seed=3,
                             jobs_per_client=8, clients_per_leaf=3,
                             connections_per_client=1),
            on_ready=flap,
        )
        assert result.collector.completion_rate == 1.0
