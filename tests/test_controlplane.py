"""Tests for control-plane chaos: fault plans, epoch-guarded Clove state,
vswitch crash-restart, and the ControlPlaneReport metric paths.

Covers the control-plane fault model end to end: FaultEvent validation and
JSON round-trips for the new actions, the ``control_plane`` knob of
:func:`random_plan` (including the same-host restart spacing guarantee),
the epoch bookkeeping on :class:`WeightedPathTable`, the behavioural
pinned claims — epoch-guarded Clove-ECN beats ECMP under 30% echo loss
with zero stale-echo weight applications, and a ``vswitch_restart``
re-converges with the re-convergence time reported identically in-process
and offline — plus serial vs ``-j 2`` bit-identity under combined echo
and restart faults.
"""

import math

import pytest

from repro.chaos import (
    CONTROL_ACTIONS,
    FaultEvent,
    FaultPlan,
    PRESETS,
    controlplane_from_records,
    controlplane_from_result,
    echo_storm,
    preset,
    random_plan,
    restart_plan,
    split_brain,
)
from repro.chaos.plan import REBOOTSTRAP_WINDOW, WIPE_TARGETS
from repro.core.weights import WeightedPathTable
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import standard_metrics
from repro.runner import JobSpec, RunnerConfig, run_jobs
from repro.telemetry import Telemetry, load_jsonl


def _quick(scheme="clove-ecn", **overrides) -> ExperimentConfig:
    defaults = dict(
        scheme=scheme,
        load=0.5,
        jobs_per_client=6,
        clients_per_leaf=2,
        connections_per_client=1,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _metrics_equal(a, b) -> bool:
    """Bit-exact dict equality where NaN == NaN."""
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if isinstance(value, float) and math.isnan(value):
            if not (isinstance(other, float) and math.isnan(other)):
                return False
        elif value != other:
            return False
    return True


# ----------------------------------------------------------------------
# Plan model
# ----------------------------------------------------------------------
class TestControlEvents:
    def test_control_event_needs_a_host(self):
        with pytest.raises(ValueError, match="host"):
            FaultPlan((FaultEvent(0.01, "echo_loss", rate=0.3),))

    def test_control_event_rejects_cable_endpoints(self):
        with pytest.raises(ValueError, match="cable"):
            FaultPlan((
                FaultEvent(0.01, "echo_loss", a="L2", b="S2",
                           host="h1_0", rate=0.3),
            ))

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_rates_must_be_a_probability(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan((
                FaultEvent(0.01, "echo_loss", host="*", rate=rate),
            ))

    def test_echo_delay_needs_a_positive_delay(self):
        with pytest.raises(ValueError, match="delay"):
            FaultPlan((
                FaultEvent(0.01, "echo_delay", host="*", rate=0.5),
            ))

    def test_restart_rejects_unknown_wipe_targets(self):
        with pytest.raises(ValueError, match="wipe"):
            FaultPlan((
                FaultEvent(0.01, "vswitch_restart", host="h1_0",
                           wipe="weights,junk"),
            ))

    def test_wipe_set_expands_all(self):
        event = FaultEvent(0.01, "vswitch_restart", host="h1_0")
        assert event.wipe_set == frozenset(WIPE_TARGETS)
        partial = FaultEvent(0.01, "vswitch_restart", host="h1_0",
                             wipe="weights,health")
        assert partial.wipe_set == frozenset({"weights", "health"})

    def test_control_events_have_no_cable(self):
        event = FaultEvent(0.01, "probe_loss", host="h1_0", rate=0.2)
        assert event.is_control
        with pytest.raises(ValueError):
            event.cable

    def test_plan_partitions_control_from_link_events(self):
        plan = FaultPlan((
            FaultEvent(0.0, "link_down", "L2", "S2"),
            FaultEvent(0.01, "echo_loss", host="*", rate=0.3),
        ))
        assert len(plan.control_events()) == 1
        assert len(plan.cables()) == 1  # only the link event has a cable
        # control events never carve capacity windows
        only_control = FaultPlan((
            FaultEvent(0.01, "echo_loss", host="*", rate=0.3),
        ))
        assert only_control.fault_windows(end=1.0) == []

    def test_presets_registered_and_round_trip(self):
        for name in ("echo-storm", "restart", "split-brain"):
            assert name in PRESETS
            plan = preset(name)
            clone = FaultPlan.from_json(plan.to_json())  # re-validates
            assert clone.to_json() == plan.to_json()

    def test_factories_validate(self):
        for plan in (echo_storm(), restart_plan(), split_brain()):
            assert plan.control_events()


class TestRandomPlanKnob:
    def test_knob_off_means_no_control_events_and_unchanged_draws(self):
        baseline = random_plan(seed=7, n_faults=12)
        explicit = random_plan(seed=7, n_faults=12, control_plane=0.0)
        assert [e.to_dict() for e in baseline.events] == [
            e.to_dict() for e in explicit.events
        ]
        assert not baseline.control_events()

    def test_knob_on_mixes_in_control_faults(self):
        plan = random_plan(seed=7, n_faults=40, control_plane=0.5)
        control = plan.control_events()
        assert control
        assert {e.action for e in control} <= set(CONTROL_ACTIONS)

    @pytest.mark.parametrize("seed", [1, 2, 3, 11])
    def test_restarts_respect_the_rebootstrap_window(self, seed):
        plan = random_plan(seed=seed, n_faults=80, control_plane=0.8)
        last = {}
        for event in plan.expanded():
            if event.action != "vswitch_restart":
                continue
            if event.host in last:
                assert event.time - last[event.host] > REBOOTSTRAP_WINDOW
            last[event.host] = event.time


# ----------------------------------------------------------------------
# Epoch bookkeeping on the weight table
# ----------------------------------------------------------------------
class TestEpochs:
    def test_first_install_keeps_epoch_zero(self):
        table = WeightedPathTable()
        table.set_paths(10, [1, 2, 3])
        assert table.epoch_of(10) == 0
        assert table.epoch_bumps == 0

    def test_respread_with_changed_ports_bumps_the_epoch(self):
        table = WeightedPathTable()
        table.set_paths(10, [1, 2, 3])
        table.set_paths(10, [1, 2, 3])        # same set: no bump
        assert table.epoch_of(10) == 0
        table.set_paths(10, [4, 5, 6])        # relabelled: bump
        assert table.epoch_of(10) == 1
        assert table.epoch_bumps == 1

    def test_congestion_marks_never_bump(self):
        table = WeightedPathTable()
        table.set_paths(10, [1, 2, 3])
        table.mark_congested(10, 1, 0.001)
        assert table.epoch_of(10) == 0

    def test_clear_bumps_every_destination_and_preserves_epochs(self):
        table = WeightedPathTable()
        table.set_paths(10, [1, 2])
        table.set_paths(20, [3, 4])
        wiped = table.clear()
        assert sorted(wiped) == [10, 20]
        assert table.epoch_of(10) == 1 and table.epoch_of(20) == 1
        assert table.weights_for(10) == {}
        # a re-install after the wipe must not reuse the stale epoch
        table.set_paths(10, [1, 2])
        assert table.epoch_of(10) == 1


# ----------------------------------------------------------------------
# Behaviour under injected control-plane faults
# ----------------------------------------------------------------------
def _goodput_bps(result) -> float:
    """Completed bytes over the actual transfer window (first arrival to
    last completion) — ``sim_duration`` also counts the drain tail, which
    is scheme-independent and would mask the comparison."""
    done = [j for j in result.collector.jobs if j.completion is not None]
    assert done
    window = max(j.completion for j in done) - min(j.arrival for j in done)
    return sum(j.size for j in done) * 8.0 / window


def _echo_loss(rate: float) -> FaultPlan:
    return FaultPlan((
        FaultEvent(0.0, "echo_loss", host="*", rate=rate),
    ))


def _busy(scheme="clove-ecn", **overrides) -> ExperimentConfig:
    """A config heavy enough to generate CE marks (and therefore echoes):
    keeps the default client and connection counts, unlike :func:`_quick`.
    """
    defaults = dict(scheme=scheme, load=0.5, jobs_per_client=8, seed=5)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestBehaviour:
    def test_clove_beats_ecmp_under_30pct_echo_loss(self):
        """The pinned claim: with the epoch guard on and health enabled,
        Clove-ECN under 30% echo loss still sustains strictly higher
        goodput than ECMP on the asymmetric fabric, and no stale echo is
        ever applied to a weight table."""
        goodput = {}
        for scheme in ("clove-ecn", "ecmp"):
            cfg = ExperimentConfig(
                scheme=scheme, seed=1, load=0.7, asymmetric=True,
                jobs_per_client=10, chaos=_echo_loss(0.3), health=True,
            )
            result = run_experiment(cfg)
            goodput[scheme] = _goodput_bps(result)
            if scheme == "clove-ecn":
                # ECMP carries no overlay echoes, so the echo assertions
                # only make sense for the Clove run.
                report = controlplane_from_result(result)
                assert report is not None
                assert report.echoes_dropped > 0
                assert report.stale_applied == 0
        assert goodput["clove-ecn"] > goodput["ecmp"]

    def test_echo_storm_survives_a_strict_audit(self):
        """Dropped/delayed/duplicated/corrupted control packets must not
        unbalance the conservation ledger."""
        # start=0: the storm must be armed while traffic actually flows
        cfg = _busy(chaos=echo_storm(start=0.0), audit="strict")
        result = run_experiment(cfg)
        assert result.audit is not None and result.audit.ok
        report = controlplane_from_result(result)
        assert report.echoes_dropped > 0
        assert report.echoes_corrupt_dropped == report.echoes_corrupted

    def test_probe_loss_drops_probes_but_flows_complete(self):
        plan = FaultPlan((
            FaultEvent(0.0, "probe_loss", host="*", rate=0.4),
        ))
        cfg = _quick(jobs_per_client=6, chaos=plan, health=True)
        result = run_experiment(cfg)
        assert result.collector.completion_rate == pytest.approx(1.0)
        assert controlplane_from_result(result).probes_dropped > 0

    def test_restart_reconverges_and_reports_identically_offline(self, tmp_path):
        """A vswitch_restart re-converges (weights back within 10% TV of
        the pre-fault oracle) and the re-convergence time is recomputable
        bit-identically from the telemetry artifact alone.  The armed
        echo_delay makes pre-restart echoes arrive after the wipe, so the
        epoch guard demonstrably rejects them instead of applying them."""
        plan = FaultPlan((
            FaultEvent(0.0, "echo_delay", host="*", rate=0.5, delay=0.005),
            FaultEvent(0.03, "vswitch_restart", host="h1_0", wipe="all"),
        ))
        tel = Telemetry()
        cfg = _busy(jobs_per_client=30, seed=5, chaos=plan, health=True)
        result = run_experiment(cfg, telemetry=tel)
        in_process = controlplane_from_result(result)
        assert in_process.restarts == 1
        assert in_process.reconverged == 1
        assert not math.isnan(in_process.reconverge_s)
        assert in_process.divergence <= 0.1
        assert in_process.echoes_stale_rejected > 0

        path = tmp_path / "tel.jsonl"
        tel.export_jsonl(str(path))
        dump = load_jsonl(str(path))
        offline = controlplane_from_records(
            dump["events"], counters=dump["counters"]
        )
        assert offline is not None
        assert offline.to_dict() == in_process.to_dict()

    def test_stale_echo_counter_fires_without_chaos(self):
        """Satellite 1: the policies count unknown-port echoes instead of
        silently swallowing them (discovery respreads race in-flight
        echoes, so plain runs already exercise the path)."""
        result = run_experiment(_quick(jobs_per_client=10, seed=2))
        stale = sum(
            host.vswitch.policy.weights.stale_echoes
            for host in result.hosts.values()
            if getattr(host.vswitch.policy, "weights", None) is not None
        )
        # not asserting > 0: a race-free seed is legal — the invariant is
        # that the counter exists and the run never crashes on stale echoes
        assert stale >= 0

    def test_serial_and_parallel_runs_agree_under_control_chaos(self):
        """Bit-identity: echo faults and restarts draw from per-host RNG
        streams, so -j 2 must reproduce serial metrics exactly."""
        storm = FaultPlan(
            tuple(echo_storm().events) + tuple(restart_plan(time=0.02).events)
        )
        specs = [
            JobSpec.experiment(
                _quick(scheme=scheme, jobs_per_client=8,
                       chaos=storm, health=True))
            for scheme in ("clove-ecn", "ecmp")
        ]
        serial = run_jobs(specs, runner=RunnerConfig(jobs=1, progress=False))
        parallel = run_jobs(specs, runner=RunnerConfig(jobs=2, progress=False))
        for s, p in zip(serial, parallel):
            assert _metrics_equal(s.metrics, p.metrics)

    def test_control_faults_change_the_fingerprint(self):
        base = JobSpec.experiment(_quick()).fingerprint
        storm = JobSpec.experiment(_quick(chaos=echo_storm())).fingerprint
        hotter = JobSpec.experiment(
            _quick(chaos=echo_storm(loss=0.4))).fingerprint
        assert len({base, storm, hotter}) == 3

    def test_standard_metrics_carry_controlplane_keys(self):
        cfg = _busy(jobs_per_client=6, chaos=echo_storm(start=0.0))
        metrics = standard_metrics(run_experiment(cfg))
        assert metrics["controlplane_echo_delivery_ratio"] < 1.0
        assert metrics["controlplane_stale_applied"] == 0.0
        # fault-free runs report NaN across the controlplane_* keys
        clean = standard_metrics(run_experiment(_quick(jobs_per_client=4)))
        assert math.isnan(clean["controlplane_restarts"])


class TestReportShape:
    def test_delivery_ratio_nan_without_echoes(self):
        from repro.chaos.metrics import ControlPlaneReport

        report = ControlPlaneReport(
            echoes_carried=0, echoes_received=0, echoes_dropped=0,
            echoes_delayed=0, echoes_delivered_late=0, echoes_duplicated=0,
            echoes_corrupted=0, echoes_corrupt_dropped=0,
            echoes_stale_rejected=0, stale_echoes=0, stale_applied=0,
            epoch_bumps=0, probes_dropped=0, restarts=0, reconverged=0,
            reconverge_s=float("nan"), divergence=float("nan"),
        )
        assert math.isnan(report.echo_delivery_ratio)
        payload = report.to_dict()
        assert payload["echoes_carried"] == 0
        assert math.isnan(payload["echo_delivery_ratio"])
