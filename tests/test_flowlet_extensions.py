"""Tests for the Section 7 flowlet optimizations on Clove-ECN."""

import pytest

from repro.core.clove import CloveEcnPolicy, CloveParams
from repro.hypervisor.policy import PathFeedback
from repro.net.packet import FlowKey, make_data_packet
from repro.transport.tcp import open_connection

from tests.conftest import make_fabric

FLOW = FlowKey(1, 42, 1000, 80)
PORTS = [50001, 50002, 50003, 50004]
TRACES = [("a",), ("b",), ("c",), ("d",)]


class TestReorderShield:
    def test_enables_reassembly(self):
        assert CloveEcnPolicy(reorder_shield=True).needs_reassembly
        assert not CloveEcnPolicy().needs_reassembly

    def test_transfer_completes_with_shield(self):
        policies = {}

        def factory(name, index):
            policies[name] = CloveEcnPolicy(
                CloveParams(flowlet_gap=1e-6),  # aggressive: reorders a lot
                reorder_shield=True,
            )
            return policies[name]

        sim, net, hosts = make_fabric(policy_factory=factory)
        for name, host in hosts.items():
            for other, o in hosts.items():
                if other != name:
                    policies[name].set_paths(o.ip, PORTS, TRACES)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(500_000, lambda: done.append(True))
        sim.run(until=2.0)
        assert done

    def test_shield_reduces_guest_visible_reordering(self):
        results = {}
        for shield in (False, True):
            policies = {}

            def factory(name, index, _s=shield):
                policies[name] = CloveEcnPolicy(
                    CloveParams(flowlet_gap=1e-6), reorder_shield=_s
                )
                return policies[name]

            sim, net, hosts = make_fabric(policy_factory=factory)
            for name, host in hosts.items():
                for other, o in hosts.items():
                    if other != name:
                        policies[name].set_paths(o.ip, PORTS, TRACES)
            connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
            connection.start_flow(500_000, lambda: None)
            sim.run(until=2.0)
            results[shield] = connection.receiver.ooo_packets
        assert results[True] <= results[False]


class TestAdaptiveGap:
    def test_enables_latency_feedback(self):
        policy = CloveEcnPolicy(adaptive_gap=True)
        assert policy.wants_latency

    def test_gap_grows_with_delay_spread(self):
        params = CloveParams(flowlet_gap=100e-6)
        policy = CloveEcnPolicy(params, adaptive_gap=True)
        policy.set_paths(42, PORTS, TRACES)
        # No delay info yet: base gap.
        assert policy._adapted_gap(42) == pytest.approx(100e-6)
        policy.on_path_feedback(PathFeedback(42, PORTS[0], False, util=50e-6), 0.0)
        policy.on_path_feedback(PathFeedback(42, PORTS[1], False, util=450e-6), 0.0)
        # Spread of 400us added on top of the base gap.
        assert policy._adapted_gap(42) == pytest.approx(500e-6)

    def test_selection_applies_adapted_gap(self):
        params = CloveParams(flowlet_gap=100e-6)
        policy = CloveEcnPolicy(params, adaptive_gap=True)
        policy.set_paths(42, PORTS, TRACES)
        policy.on_path_feedback(PathFeedback(42, PORTS[0], False, util=0.0), 0.0)
        policy.on_path_feedback(PathFeedback(42, PORTS[1], False, util=1e-3), 0.0)
        first = policy.select_source_port(FLOW, make_data_packet(FLOW, 0, 100, 0.0), 0.0)
        # 500us later: inside the widened (1.1ms) gap, so same flowlet.
        later = policy.select_source_port(
            FLOW, make_data_packet(FLOW, 0, 100, 0.0), 500e-6
        )
        assert later == first

    def test_without_adaptive_gap_flowlet_splits(self):
        params = CloveParams(flowlet_gap=100e-6)
        policy = CloveEcnPolicy(params, adaptive_gap=False)
        policy.set_paths(42, PORTS, TRACES)
        seen = set()
        t = 0.0
        for _ in range(30):
            seen.add(policy.select_source_port(
                FLOW, make_data_packet(FLOW, 0, 100, t), t
            ))
            t += 500e-6  # always beyond the base gap
        assert len(seen) > 1
