"""Tests for repro.core.health: the self-healing control loop.

Covers monitor wiring (opt-in via ``wants_health``, disabled by default),
fault detection and quarantine under a persistent cable failure, graduated
probation restore after the cable heals, the guest-transparency guarantee
(every job completes despite a dead path), offline/in-process health-metric
parity, serial/parallel determinism with the monitor enabled, and the
headline pinned regression: under single-cable chaos with a realistic
routing-repair lag, Clove-ECN *with* the monitor recovers strictly faster
and blackholes strictly fewer packets than without it.
"""

import math

import pytest

from repro.chaos import (
    flap,
    health_from_records,
    health_from_result,
    recovery_from_result,
    single_cable,
)
from repro.core.health import HealthConfig, PathHealthMonitor
from repro.core.weights import STATE_QUARANTINED
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import standard_metrics
from repro.runner import JobSpec, RunnerConfig, run_jobs
from repro.telemetry import Telemetry, load_jsonl


def _metrics_equal(a, b) -> bool:
    """Bit-exact dict equality where NaN == NaN."""
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if isinstance(value, float) and math.isnan(value):
            if not (isinstance(other, float) and math.isnan(other)):
                return False
        elif value != other:
            return False
    return True


#: fast-detection tuning for chaos scenarios (the RTT-derived defaults are
#: deliberately conservative; tests compress the timeline instead of the
#: simulated fabric)
FAST = HealthConfig(
    probe_interval=1e-3,
    probe_timeout=1.2e-3,
    probation_window=2e-3,
    rediscovery_backoff=2e-3,
    rediscovery_max_backoff=16e-3,
)


def _small(**overrides) -> ExperimentConfig:
    defaults = dict(
        scheme="clove-ecn",
        load=0.3,
        seed=2,
        jobs_per_client=60,
        clients_per_leaf=2,
        connections_per_client=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# ----------------------------------------------------------------------
# Wiring: opt-in, defaults, metric visibility
# ----------------------------------------------------------------------
class TestMonitorWiring:
    def test_disabled_by_default(self):
        result = run_experiment(_small(jobs_per_client=4))
        assert all(host.health is None for host in result.hosts.values())
        assert health_from_result(result) is None
        metrics = standard_metrics(result)
        assert math.isnan(metrics["health_paths_quarantined"])
        assert math.isnan(metrics["health_detection_latency_s"])

    def test_policies_without_a_path_table_opt_out(self):
        result = run_experiment(_small(scheme="ecmp", jobs_per_client=4,
                                       health=True))
        assert all(host.health is None for host in result.hosts.values())

    def test_enabled_clove_hosts_get_a_monitor(self):
        result = run_experiment(_small(jobs_per_client=4, health=True))
        monitors = [h.health for h in result.hosts.values()
                    if h.health is not None]
        assert monitors
        assert all(isinstance(m, PathHealthMonitor) for m in monitors)

    def test_start_is_idempotent(self):
        result = run_experiment(_small(jobs_per_client=4, health=True))
        monitor = next(h.health for h in result.hosts.values()
                       if h.health is not None)
        sent = monitor.probes_sent
        monitor.start()  # second call must not double the probe cycle
        assert monitor.probes_sent == sent

    def test_health_changes_the_job_fingerprint(self):
        base = JobSpec.experiment(_small()).fingerprint
        enabled = JobSpec.experiment(_small(health=True)).fingerprint
        tuned = JobSpec.experiment(
            _small(health=True, health_config=FAST)).fingerprint
        assert len({base, enabled, tuned}) == 3
        assert "health" in JobSpec.experiment(_small(health=True)).label


# ----------------------------------------------------------------------
# Detection and quarantine under a persistent fault
# ----------------------------------------------------------------------
class TestQuarantine:
    @pytest.fixture(scope="class")
    def persistent_fault(self):
        """One cable dies at t=10ms and never heals; routing repair is
        slower than the run, so only the monitor can save traffic."""
        return run_experiment(_small(
            chaos=single_cable(time=0.01),
            failover_delay_s=1.0,
            health=True,
            health_config=FAST,
        ))

    def test_dead_paths_are_quarantined(self, persistent_fault):
        report = health_from_result(persistent_fault)
        assert report.paths_quarantined > 0
        assert report.probes_lost > 0
        assert report.suspect_events > 0

    def test_detection_is_prompt(self, persistent_fault):
        report = health_from_result(persistent_fault)
        # dead_after=3 losses at a 1 ms probe interval: well under 10 ms.
        assert 0.0 < report.detection_latency_s < 0.01

    def test_quarantine_is_guest_transparent(self, persistent_fault):
        collector = persistent_fault.collector
        assert len(collector.completed()) == len(collector.jobs)

    def test_quarantined_weights_leave_the_table_normalized(
            self, persistent_fault):
        for host in persistent_fault.hosts.values():
            if host.health is None:
                continue
            table = host.health.table
            for dst in table.destinations():
                weights = table.weights_for(dst)
                quarantined = [
                    port for port, state in table.path_states(dst)
                    if state == STATE_QUARANTINED
                ]
                for port in quarantined:
                    assert weights[port] == 0.0
                if table.has_live_paths(dst):
                    assert sum(weights.values()) == pytest.approx(1.0)

    def test_markers_record_quarantines(self, persistent_fault):
        markers = [
            marker
            for host in persistent_fault.hosts.values()
            if host.health is not None
            for marker in host.health.markers
        ]
        assert any(m.action == "quarantine" for m in markers)
        assert all(m.time >= 0.01 for m in markers
                   if m.action == "quarantine")

    def test_standard_metrics_surface_health(self, persistent_fault):
        metrics = standard_metrics(persistent_fault)
        assert metrics["health_paths_quarantined"] > 0
        assert metrics["health_probes_sent"] > 0
        assert 0.0 < metrics["health_detection_latency_s"] < 0.01


# ----------------------------------------------------------------------
# Recovery: graduated probation restore after the cable heals
# ----------------------------------------------------------------------
class TestRecovery:
    def test_restore_through_probation_after_flap(self):
        result = run_experiment(_small(
            jobs_per_client=250,
            chaos=flap(start=0.01, period=0.015, downtime=0.012, flaps=1),
            failover_delay_s=1.0,
            health=True,
            health_config=FAST,
        ))
        report = health_from_result(result)
        assert report.paths_quarantined > 0
        assert report.paths_restored > 0
        # Two probation stages at probation_window=2 ms each.
        assert report.probation_s == pytest.approx(4e-3, rel=0.5)
        restored = [
            marker
            for host in result.hosts.values()
            if host.health is not None
            for marker in host.health.markers
            if marker.action == "restore"
        ]
        assert restored
        assert all(m.probation_s > 0 for m in restored)

    def test_all_paths_quarantined_falls_back_without_crashing(self):
        """Zero survivors: the policy must fall back to static hashing
        (and the all-congested ECE rule throttles the guest) rather than
        raising out of the vswitch."""
        result = run_experiment(_small(jobs_per_client=4, health=True))
        host = next(h for h in result.hosts.values() if h.health is not None)
        table = host.health.table
        dst = table.destinations()[0]
        for port in list(table.ports_for(dst)):
            table.quarantine(dst, port)
        assert not table.has_live_paths(dst)
        assert table.all_congested(dst, now=host.sim.now)
        with pytest.raises(KeyError):
            table.next_port(dst)
        # The policy's selection path must still produce a port.
        from repro.net.packet import FlowKey, Packet
        policy = host.vswitch.policy
        key = FlowKey(host.ip, dst, 40000, 80)
        packet = Packet(key, payload_bytes=1000, created_at=host.sim.now)
        assert policy.select_source_port(key, packet, now=host.sim.now) >= 0


# ----------------------------------------------------------------------
# Healthy fabric: the monitor must not distort a fault-free run
# ----------------------------------------------------------------------
class TestHealthyFabric:
    def test_no_quarantines_and_completion_parity(self):
        baseline = run_experiment(_small(jobs_per_client=250,
                                         connections_per_client=3))
        monitored = run_experiment(_small(jobs_per_client=250,
                                          connections_per_client=3,
                                          health=True))
        report = health_from_result(monitored)
        assert report.paths_quarantined == 0
        assert report.paths_restored == 0
        assert report.probes_sent > 0
        assert (len(monitored.collector.completed())
                == len(baseline.collector.completed()))
        # Probe traffic perturbs packet timing, so FCTs are not
        # bit-identical — but the distribution must stay in the same
        # place.  Tolerance covers the seed-to-seed variance at this
        # scale (~5%) plus the timing jitter the probes themselves
        # introduce; a real probe-cost regression shows up as tens of
        # percent, not this margin.
        assert monitored.avg_fct == pytest.approx(baseline.avg_fct, rel=0.15)


# ----------------------------------------------------------------------
# Offline parity: artifact-derived health metrics match in-process ones
# ----------------------------------------------------------------------
class TestOfflineParity:
    def test_health_from_records_matches_in_process(self, tmp_path):
        telemetry = Telemetry()
        result = run_experiment(
            _small(chaos=single_cable(time=0.01), failover_delay_s=1.0,
                   health=True, health_config=FAST),
            telemetry=telemetry,
        )
        live = health_from_result(result)
        path = tmp_path / "run.jsonl"
        telemetry.export_jsonl(str(path))
        dump = load_jsonl(str(path))
        offline = health_from_records(dump["events"], dump["counters"])
        assert offline is not None
        assert offline.paths_quarantined == live.paths_quarantined
        assert offline.paths_restored == live.paths_restored
        assert offline.suspect_events == live.suspect_events
        assert offline.probes_sent == live.probes_sent
        assert offline.probes_lost == live.probes_lost
        assert offline.detection_latency_s == pytest.approx(
            live.detection_latency_s)

    def test_no_health_events_yield_none(self):
        assert health_from_records([], {}) is None

    def test_telemetry_scrapes_health_counters(self):
        telemetry = Telemetry()
        result = run_experiment(
            _small(jobs_per_client=4, health=True, health_config=FAST),
            telemetry=telemetry,
        )
        snapshot = telemetry.snapshot()
        sent = sum(
            value for name, value in snapshot["counters"].items()
            if name.startswith("health.probes_sent")
        )
        assert sent == sum(
            host.health.probes_sent for host in result.hosts.values()
            if host.health is not None
        )
        assert sent > 0


# ----------------------------------------------------------------------
# Determinism: health + chaos runs are bit-identical serial vs parallel
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_serial_and_parallel_health_runs_agree(self):
        specs = [
            JobSpec.experiment(_small(
                jobs_per_client=10,
                chaos=single_cable(time=0.01),
                failover_delay_s=1.0,
                health=True,
                health_config=FAST,
                seed=seed,
            ))
            for seed in (2, 3)
        ]
        serial = run_jobs(specs, runner=RunnerConfig(jobs=1, progress=False))
        parallel = run_jobs(specs, runner=RunnerConfig(jobs=2, progress=False))
        for s, p in zip(serial, parallel):
            assert _metrics_equal(s.metrics, p.metrics)
        assert serial[0].metrics["health_paths_quarantined"] > 0


# ----------------------------------------------------------------------
# The pinned regression: self-healing beats routing-repair lag
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pinned_comparison():
    """Clove-ECN under single-cable chaos with a 90 ms routing-repair lag,
    with and without the health monitor.  Arrivals continue well past the
    repair horizon so goodput-based time-to-recover is measurable.

    The seed is pinned to one whose *unmonitored* run shows a clear
    post-fault goodput dip: time-to-recover is quantized to the goodput
    bin width, so on seeds where the unmonitored flows happen to dodge a
    full-bin dip both variants saturate at the metric's one-bin floor and
    the strict TTR comparison below has nothing to measure.  (Blackhole
    counts and FCT — the other regressions here — separate on every seed
    tried.)"""
    results = {}
    for health in (False, True):
        config = ExperimentConfig(
            scheme="clove-ecn",
            load=0.4,
            seed=4,
            jobs_per_client=1400,
            clients_per_leaf=2,
            connections_per_client=3,
            chaos=single_cable(time=0.05),
            failover_delay_s=0.09,
            health=health,
            health_config=FAST if health else None,
        )
        result = run_experiment(config)
        results[health] = {
            "result": result,
            "recovery": recovery_from_result(result, bin_width=6e-3),
            "health": health_from_result(result),
        }
    return results


class TestPinnedSelfHealing:
    def test_health_recovers_strictly_faster(self, pinned_comparison):
        ttr_none = pinned_comparison[False]["recovery"].time_to_recover_s
        ttr_health = pinned_comparison[True]["recovery"].time_to_recover_s
        assert not math.isnan(ttr_none)
        assert not math.isnan(ttr_health)
        assert ttr_health < ttr_none

    def test_health_blackholes_strictly_fewer_packets(self, pinned_comparison):
        dropped_none = pinned_comparison[False]["recovery"].blackholed_packets
        dropped_health = pinned_comparison[True]["recovery"].blackholed_packets
        assert 0 < dropped_health < dropped_none

    def test_health_improves_flow_completion(self, pinned_comparison):
        assert (pinned_comparison[True]["result"].avg_fct
                < pinned_comparison[False]["result"].avg_fct)

    def test_completion_parity(self, pinned_comparison):
        completed = {
            health: len(entry["result"].collector.completed())
            for health, entry in pinned_comparison.items()
        }
        jobs = len(pinned_comparison[True]["result"].collector.jobs)
        assert completed[True] == completed[False] == jobs

    def test_monitor_acted(self, pinned_comparison):
        report = pinned_comparison[True]["health"]
        assert report.paths_quarantined > 0
        assert report.paths_restored > 0
        assert 0.0 < report.detection_latency_s < 0.01
