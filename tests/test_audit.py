"""Acceptance tests for repro.audit: the invariant checker must catch each
seeded corruption by name, report nothing on clean runs, and produce a
determinism digest that is stable across processes and execution modes.

Fault seeding uses ``run_experiment``'s ``on_ready`` hook to schedule an
in-simulation corruption of live state (a queue counter, a weight table, a
conservation counter); the auditor's next checkpoint or the final ledger
must then report exactly that invariant.
"""

import json
import math

import pytest

from repro.audit import (
    Auditor,
    AuditError,
    AuditReport,
    MODE_REPORT,
    MODE_STRICT,
    StreamDigest,
    audit_artifact,
    diff_digests,
    digest_events,
    parse_digest,
    render_digest,
)
from repro.chaos import FaultEvent, FaultPlan
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import standard_metrics
from repro.runner import JobSpec, RunnerConfig, run_jobs
from repro.sim.engine import Event, Simulator
from repro.telemetry import Telemetry


def _config(**overrides) -> ExperimentConfig:
    base = dict(
        scheme="clove-ecn", load=0.5, seed=1, jobs_per_client=8,
        clients_per_leaf=2, connections_per_client=1, audit=MODE_REPORT,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


#: a fault plan that exercises flush/blackhole accounting: one fabric cable
#: down mid-run, then restored
_CABLE_BOUNCE = FaultPlan((
    FaultEvent(0.030, "link_down", "L1", "S1"),
    FaultEvent(0.045, "link_up", "L1", "S1"),
))


# ----------------------------------------------------------------------
# Clean runs: zero findings across the paper configs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("overrides", [
    {},                                          # clove-ecn
    {"scheme": "ecmp"},                          # no weight table / echoes
    {"chaos": _CABLE_BOUNCE},                    # flush + blackhole paths
    {"health": True, "chaos": _CABLE_BOUNCE},    # quarantine transitions
])
def test_clean_run_has_zero_findings(overrides):
    result = run_experiment(_config(**overrides))
    report = result.audit
    assert report is not None
    assert report.ok, report.summary()
    assert report.findings == []
    assert report.digest is not None
    # Every layer's invariant was actually exercised, not skipped.
    for invariant in ("queue.occupancy", "transport.sequence",
                      "conservation.global", "engine.monotonic-time"):
        assert report.checked.get(invariant, 0) > 0, invariant


def test_strict_clean_run_does_not_raise():
    result = run_experiment(_config(audit=MODE_STRICT))
    assert result.audit is not None and result.audit.ok


def test_unaudited_run_has_no_report_and_nan_metric():
    result = run_experiment(_config(audit=None))
    assert result.audit is None
    assert math.isnan(standard_metrics(result)["audit_violations"])


def test_audited_metrics_count_violations():
    result = run_experiment(_config())
    assert standard_metrics(result)["audit_violations"] == 0.0


# ----------------------------------------------------------------------
# Fault seeding: each corruption is caught and named
# ----------------------------------------------------------------------
def _corrupting(mutate):
    """An on_ready hook scheduling ``mutate(net, hosts)`` mid-run."""
    def on_ready(sim, net, hosts):
        sim.schedule(0.025, mutate, net, hosts)
    return on_ready


def test_seeded_queue_corruption_is_caught():
    def mutate(net, hosts):
        next(iter(net.all_links())).queue.byte_count += 1499

    result = run_experiment(_config(), on_ready=_corrupting(mutate))
    report = result.audit
    finding = report.first("queue.occupancy")
    assert finding is not None, report.summary()
    assert "byte counter" in finding.message


def test_seeded_weight_corruption_is_caught():
    def mutate(net, hosts):
        for host in hosts.values():
            table = getattr(host.vswitch.policy, "weights", None)
            if table is not None and table._paths:
                states = next(iter(table._paths.values()))
                states[0].weight += 0.5
                return
        raise AssertionError("no populated weight table to corrupt")

    result = run_experiment(_config(), on_ready=_corrupting(mutate))
    assert result.audit.first("weights.sum") is not None, (
        result.audit.summary()
    )


def test_seeded_drop_miscount_breaks_conservation():
    def mutate(net, hosts):
        host = next(iter(hosts.values()))
        host.tx_nic_packets += 7          # phantom injected packets

    result = run_experiment(_config(), on_ready=_corrupting(mutate))
    report = result.audit
    finding = report.first("conservation.global")
    assert finding is not None, report.summary()
    assert "unaccounted" in finding.message
    assert finding.severity == "critical"


def test_fabricated_echo_violates_ecn_causality():
    auditor = Auditor(mode=MODE_REPORT)
    auditor.on_echo_consumed("10.0.1.1", "10.0.2.1", 4242)
    finding = auditor.report.first("ecn.causality")
    assert finding is not None
    assert finding.context["port"] == 4242
    # ...while an echo preceded by its CE observation is legal.
    auditor2 = Auditor(mode=MODE_REPORT)
    auditor2.on_ce_observed("10.0.2.1", "10.0.1.1", 4242)
    auditor2.on_echo_consumed("10.0.1.1", "10.0.2.1", 4242)
    assert auditor2.report.ok


def test_heap_corruption_surfaces_as_time_regression():
    sim = Simulator()
    auditor = Auditor(mode=MODE_REPORT)
    auditor.attach(sim, net=None, hosts=())
    fired = []
    sim.schedule(0.5, fired.append, "late")
    # Violate the heap property behind the engine's back: an earlier event
    # appended at the tail pops *after* the later root.
    sim._queue.append((0.1, 999, Event(0.1, 999, fired.append, ("early",))))
    sim.run()
    assert fired == ["late", "early"]
    finding = auditor.report.first("engine.monotonic-time")
    assert finding is not None
    assert finding.severity == "critical"


def test_strict_mode_raises_on_seeded_fault():
    def mutate(net, hosts):
        next(iter(net.all_links())).queue.byte_count -= 100

    with pytest.raises(AuditError) as excinfo:
        run_experiment(_config(audit=MODE_STRICT),
                       on_ready=_corrupting(mutate))
    assert excinfo.value.finding.invariant == "queue.occupancy"


# ----------------------------------------------------------------------
# Determinism digest
# ----------------------------------------------------------------------
def _named_callback():
    pass


def test_engine_digest_matches_stream_digest_reference():
    """The inlined engine mix must equal StreamDigest.mix, event for event."""
    sim = Simulator()
    auditor = Auditor()
    auditor.attach(sim, net=None, hosts=())
    order = []
    sim.schedule(0.2, order.append, "b")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, _named_callback)
    sim.schedule(0.3, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]

    reference = StreamDigest()
    reference.mix(0.1, "list.append")
    reference.mix(0.2, "list.append")
    reference.mix(0.2, "_named_callback")
    reference.mix(0.3, "list.append")
    assert render_digest(auditor.digest_state, auditor.digest_count) \
        == reference.render()


def test_run_vs_rerun_digest_identical():
    a = run_experiment(_config()).audit.digest
    b = run_experiment(_config()).audit.digest
    assert a == b
    assert diff_digests(a, b).startswith("identical")


def test_different_seeds_diverge():
    a = run_experiment(_config(seed=1)).audit.digest
    b = run_experiment(_config(seed=2)).audit.digest
    assert a != b
    assert diff_digests(a, b).startswith("DIVERGED")


def test_digest_render_parse_roundtrip():
    digest = StreamDigest()
    digest.mix(0.25, "x")
    digest.mix(0.5, "y")
    state, count = parse_digest(digest.render())
    assert count == 2
    assert render_digest(state, count) == digest.render()


# ----------------------------------------------------------------------
# Runner integration: serial vs parallel, cache round-trip
# ----------------------------------------------------------------------
def test_parallel_digest_matches_serial():
    specs = [JobSpec.experiment(_config(seed=seed)) for seed in (1, 2)]
    serial = run_jobs(specs, runner=RunnerConfig(jobs=1))
    parallel = run_jobs(
        [JobSpec.experiment(_config(seed=seed)) for seed in (1, 2)],
        runner=RunnerConfig(jobs=2),
    )
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert s.audit is not None and p.audit is not None
        assert s.audit["digest"] == p.audit["digest"]
        assert s.audit["ok"] and p.audit["ok"]


def test_cache_round_trips_audit_report(tmp_path):
    runner = RunnerConfig(jobs=1, cache_dir=str(tmp_path))
    (first,) = run_jobs([JobSpec.experiment(_config())], runner=runner)
    (second,) = run_jobs([JobSpec.experiment(_config())], runner=runner)
    assert not first.cached and second.cached
    assert second.audit == first.audit
    report = AuditReport.from_dict(second.audit)
    assert report.ok and report.digest == first.audit["digest"]


# ----------------------------------------------------------------------
# Offline replay
# ----------------------------------------------------------------------
def test_offline_replay_matches_in_process_verdict(tmp_path):
    tel = Telemetry()
    result = run_experiment(_config(), telemetry=tel)
    path = tmp_path / "run.jsonl.gz"
    tel.export_jsonl(str(path))

    offline = audit_artifact(str(path))
    assert offline.source == "offline"
    assert offline.ok == result.audit.ok
    assert offline.ok, offline.summary()
    # The in-process engine digest rides the manifest into the replay.
    assert offline.digest == result.audit.digest


def test_offline_replay_catches_corrupted_counters(tmp_path):
    tel = Telemetry()
    run_experiment(_config(), telemetry=tel)
    path = tmp_path / "run.jsonl"
    tel.export_jsonl(str(path))
    # Corrupt one conservation counter inside the artifact itself.
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        record = json.loads(line)
        if record.get("kind") == "counters":
            key = next(k for k in record["values"]
                       if k.startswith("host.tx_nic_packets"))
            record["values"][key] = int(record["values"][key]) + 11
            lines[i] = json.dumps(record)
            break
    else:
        raise AssertionError("artifact carries no counters snapshot")
    path.write_text("\n".join(lines) + "\n")

    offline = audit_artifact(str(path))
    assert not offline.ok
    assert any(f.invariant.startswith("conservation") for f in offline.findings)


def test_digest_events_artifact_fallback(tmp_path):
    records = [{"time": 0.1, "type": "a"}, {"time": 0.2, "type": "b"}]
    assert digest_events(records) == digest_events(list(records))
    assert digest_events(records) != digest_events(records[::-1])


def test_offline_rejects_unreadable_artifact(tmp_path):
    with pytest.raises(OSError):
        audit_artifact(str(tmp_path / "missing.jsonl"))
    bad = tmp_path / "bad.jsonl.gz"
    bad.write_bytes(b"not gzip at all")
    with pytest.raises((OSError, ValueError)):
        audit_artifact(str(bad))
