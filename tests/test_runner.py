"""Unit tests for the repro.runner subsystem: job model, cache, serial path."""

import json
import math

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import METRIC_KEYS, standard_metrics
from repro.harness.sweep import (
    average_over_seeds,
    avg_fct,
    format_series_table,
    metric_key,
    p99_fct,
    sweep_loads,
)
from repro.runner import (
    JobSpec,
    ResultCache,
    RunnerConfig,
    SCHEMA_VERSION,
    canonicalize,
    run_jobs,
)
from repro.runner import job as job_module
from repro.topology.leafspine import LeafSpineConfig


def _metrics_equal(a, b) -> bool:
    """Bit-exact dict equality where NaN == NaN (JSON round-trips break
    NaN identity, so plain ``==`` rejects payloads that are in fact equal)."""
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if isinstance(value, float) and math.isnan(value):
            if not (isinstance(other, float) and math.isnan(other)):
                return False
        elif value != other:
            return False
    return True


def _quick(scheme="ecmp", **overrides) -> ExperimentConfig:
    defaults = dict(
        scheme=scheme,
        load=0.3,
        jobs_per_client=4,
        clients_per_leaf=2,
        connections_per_client=1,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestFingerprint:
    def test_identical_configs_hash_identically(self):
        a = JobSpec.experiment(_quick())
        b = JobSpec.experiment(_quick())
        assert a.fingerprint == b.fingerprint

    def test_any_field_change_changes_the_hash(self):
        base = JobSpec.experiment(_quick()).fingerprint
        assert JobSpec.experiment(_quick(seed=6)).fingerprint != base
        assert JobSpec.experiment(_quick(load=0.4)).fingerprint != base
        assert JobSpec.experiment(_quick(scheme="clove-ecn")).fingerprint != base
        assert JobSpec.experiment(_quick(asymmetric=True)).fingerprint != base

    def test_stable_across_field_ordering(self):
        # kwargs order must not matter — for configs...
        a = JobSpec.experiment(ExperimentConfig(scheme="ecmp", load=0.5, seed=2))
        b = JobSpec.experiment(ExperimentConfig(seed=2, load=0.5, scheme="ecmp"))
        assert a.fingerprint == b.fingerprint
        # ...and for incast parameter dicts.
        x = JobSpec.incast(scheme="ecmp", fanout=4, seed=1)
        y = JobSpec.incast(seed=1, fanout=4, scheme="ecmp")
        assert x.fingerprint == y.fingerprint

    def test_nested_topology_and_classes_fingerprint(self):
        topo = LeafSpineConfig(hosts_per_leaf=4)
        a = JobSpec.experiment(_quick(topology=topo))
        b = JobSpec.experiment(_quick(topology=LeafSpineConfig(hosts_per_leaf=4)))
        c = JobSpec.experiment(_quick(topology=LeafSpineConfig(hosts_per_leaf=8)))
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        # switch classes canonicalize to qualified names, not addresses
        assert "Switch" in json.dumps(canonicalize(topo))

    def test_schema_version_invalidates(self, monkeypatch):
        before = JobSpec.experiment(_quick()).fingerprint
        monkeypatch.setattr(job_module, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        assert JobSpec.experiment(_quick()).fingerprint != before

    def test_kind_separates_namespaces(self):
        from repro.runner import fingerprint_payload

        assert fingerprint_payload("experiment", {"a": 1}) != fingerprint_payload(
            "incast", {"a": 1}
        )
        assert JobSpec.incast(x=1).fingerprint != JobSpec.incast(x=2).fingerprint

    def test_labels_do_not_affect_fingerprint(self):
        a = JobSpec.experiment(_quick(), label="one")
        b = JobSpec.experiment(_quick(), label="two")
        assert a.fingerprint == b.fingerprint


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.experiment(_quick())
        cache.put(spec, {"avg_fct": 1.5}, wall_s=0.1)
        entry = cache.get(spec.fingerprint)
        assert entry is not None
        assert entry["metrics"]["avg_fct"] == 1.5
        # a fresh cache object re-reads from disk
        assert ResultCache(tmp_path).get(spec.fingerprint) is not None

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("deadbeef") is None

    def test_stale_schema_entries_are_ignored(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.experiment(_quick())
        record = cache.put(spec, {"avg_fct": 1.5})
        stale = dict(record, schema=SCHEMA_VERSION - 1, fingerprint="feedface")
        with open(cache.path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(stale) + "\n")
        fresh = ResultCache(tmp_path)
        assert fresh.get("feedface") is None
        assert fresh.get(spec.fingerprint) is not None
        assert fresh.stale_entries == 1

    def test_corrupt_lines_warn_not_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.experiment(_quick())
        cache.put(spec, {"avg_fct": 2.0})
        with open(cache.path, "a", encoding="utf-8") as fp:
            fp.write('{"fingerprint": "truncated, no closing br\n')
            fp.write("not json at all\n")
        fresh = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            entry = fresh.get(spec.fingerprint)
        assert entry is not None
        assert fresh.corrupt_lines == 2

    def test_duplicate_fingerprints_keep_latest(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.experiment(_quick())
        cache.put(spec, {"avg_fct": 1.0})
        cache.put(spec, {"avg_fct": 2.0})
        assert ResultCache(tmp_path).get(spec.fingerprint)["metrics"]["avg_fct"] == 2.0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JobSpec.experiment(_quick()), {"avg_fct": 1.0})
        assert cache.clear() == 1
        assert len(cache) == 0
        assert not cache.path.exists()


class TestRunJobsSerial:
    def test_matches_direct_run_experiment(self):
        config = _quick()
        (result,) = run_jobs([JobSpec.experiment(config)])
        direct = standard_metrics(run_experiment(config))
        assert result.ok and not result.cached and result.attempts == 1
        assert _metrics_equal(result.metrics, direct)

    def test_payload_carries_every_metric_key(self):
        (result,) = run_jobs([JobSpec.experiment(_quick())])
        assert set(result.metrics) == set(METRIC_KEYS)

    def test_cache_hit_skips_run_experiment(self, tmp_path, monkeypatch):
        config = _quick()
        runner = RunnerConfig(cache_dir=str(tmp_path))
        (first,) = run_jobs([JobSpec.experiment(config)], runner=runner)
        calls = []
        monkeypatch.setattr(
            "repro.harness.experiment.run_experiment",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(AssertionError),
        )
        (second,) = run_jobs([JobSpec.experiment(config)], runner=runner)
        assert calls == []
        assert second.cached and second.attempts == 0
        assert _metrics_equal(second.metrics, first.metrics)

    def test_cached_floats_roundtrip_exactly(self, tmp_path):
        config = _quick()
        runner = RunnerConfig(cache_dir=str(tmp_path))
        (first,) = run_jobs([JobSpec.experiment(config)], runner=runner)
        (second,) = run_jobs([JobSpec.experiment(config)], runner=runner)
        # JSON float round-trip is exact (NaN aside, which _metrics_equal folds)
        assert _metrics_equal(first.metrics, second.metrics)

    def test_deterministic_error_is_not_retried(self):
        bad = ExperimentConfig(scheme="bogus")
        (result,) = run_jobs([JobSpec.experiment(bad)], runner=RunnerConfig(retries=5))
        assert not result.ok
        assert result.attempts == 1
        assert "bogus" in result.error

    def test_failed_jobs_are_not_cached(self, tmp_path):
        runner = RunnerConfig(cache_dir=str(tmp_path))
        run_jobs([JobSpec.experiment(ExperimentConfig(scheme="bogus"))], runner=runner)
        assert len(ResultCache(tmp_path)) == 0

    def test_results_preserve_input_order(self, tmp_path):
        specs = [JobSpec.experiment(_quick(seed=s)) for s in (1, 2, 3)]
        runner = RunnerConfig(cache_dir=str(tmp_path))
        run_jobs([specs[1]], runner=runner)  # pre-cache the middle spec
        results = run_jobs(specs, runner=runner)
        assert [r.spec.fingerprint for r in results] == [s.fingerprint for s in specs]
        assert [r.cached for r in results] == [False, True, False]


class TestMetricResolution:
    def test_bundled_extractors_are_tagged(self):
        assert metric_key(avg_fct) == "avg_fct"
        assert metric_key(p99_fct) == "p99_fct"
        assert metric_key("mice_avg_fct") == "mice_avg_fct"

    def test_unknown_string_key_rejected(self):
        with pytest.raises(ValueError, match="unknown metric key"):
            metric_key("not_a_metric")

    def test_custom_callable_runs_in_process(self):
        value = average_over_seeds(
            _quick(), seeds=[1], metric=lambda result: 42.0
        )
        assert value == 42.0

    def test_custom_callable_rejects_parallel_runner(self):
        with pytest.raises(ValueError, match="custom metric"):
            sweep_loads(
                _quick(), ["ecmp"], [0.3], seeds=[1],
                metric=lambda result: 0.0,
                runner=RunnerConfig(jobs=4),
            )

    def test_custom_callable_rejects_cache(self, tmp_path):
        with pytest.raises(ValueError, match="custom metric"):
            average_over_seeds(
                _quick(), seeds=[1], metric=lambda result: 0.0,
                runner=RunnerConfig(cache_dir=str(tmp_path)),
            )


class TestFormatSeriesTable:
    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="empty series"):
            format_series_table({})

    def test_ragged_load_grids_raise(self):
        series = {
            "ecmp": [(0.2, 0.001), (0.4, 0.002)],
            "clove-ecn": [(0.2, 0.001)],
        }
        with pytest.raises(ValueError, match="ragged"):
            format_series_table(series)

    def test_mismatched_loads_raise(self):
        series = {
            "ecmp": [(0.2, 0.001), (0.4, 0.002)],
            "clove-ecn": [(0.2, 0.001), (0.5, 0.002)],
        }
        with pytest.raises(ValueError, match="ragged"):
            format_series_table(series)

    def test_well_formed_series_still_renders(self):
        series = {
            "ecmp": [(0.2, 0.001), (0.4, 0.002)],
            "clove-ecn": [(0.2, 0.001), (0.4, 0.0015)],
        }
        text = format_series_table(series, scale=1000.0)
        assert "ecmp" in text and "clove-ecn" in text


class TestSweepThroughRunner:
    def test_sweep_default_matches_explicit_serial_runner(self):
        base = _quick()
        a = sweep_loads(base, ["ecmp"], [0.3, 0.5], seeds=[1])
        b = sweep_loads(base, ["ecmp"], [0.3, 0.5], seeds=[1],
                        runner=RunnerConfig(jobs=1))
        assert a == b

    def test_average_over_seeds_through_runner(self, tmp_path):
        base = _quick()
        plain = average_over_seeds(base, seeds=[1, 2])
        runner = RunnerConfig(cache_dir=str(tmp_path))
        cached = average_over_seeds(base, seeds=[1, 2], runner=runner)
        assert plain == cached
        # second call is served fully from cache
        again = average_over_seeds(base, seeds=[1, 2], runner=runner)
        assert again == plain

    def test_failed_point_yields_nan_with_warning(self):
        with pytest.warns(RuntimeWarning, match="failed"):
            series = sweep_loads(
                _quick(workload="bogus"), ["ecmp"], [0.3], seeds=[1]
            )
        assert math.isnan(series["ecmp"][0][1])
