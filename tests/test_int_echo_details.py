"""Detailed tests: INT stamping at switches, echo slot rotation at the
vswitch, and CONGA's metric aging."""

import pytest

from repro.baselines.conga import CongaLeafSwitch
from repro.hypervisor.vswitch import VSwitch, _PathEchoState
from repro.net.packet import FlowKey, make_data_packet
from repro.net.switch import Switch
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine

from tests.conftest import make_fabric


class TestIntStamping:
    def _int_net(self):
        sim = Simulator()
        net = build_leaf_spine(
            sim, RngRegistry(1), LeafSpineConfig(hosts_per_leaf=2, int_capable=True)
        )
        return sim, net

    def test_switch_stamps_max_utilization(self):
        sim, net = self._int_net()
        leaf = net.switches["L1"]
        dst = net.host_ip("h2_0")
        # Preload one uplink's DRE so its utilization is visibly nonzero.
        uplink = leaf.routes[dst][0]
        # The 40G DRE window is ~2MB; push enough bytes to read as loaded.
        for _ in range(2000):
            uplink.dre.record(1500, sim.now)
        packet = make_data_packet(FlowKey(net.host_ip("h1_0"), dst, 1, 7471), 0, 100, 0.0)
        packet.int_enabled = True
        # Force the hash to pick the loaded uplink by trying source ports.
        for sport in range(1, 400):
            candidate = FlowKey(net.host_ip("h1_0"), dst, sport, 7471)
            if leaf.routes[dst][leaf.hasher.select(candidate, 4)] is uplink:
                packet.inner = candidate
                break
        leaf.forward(packet, None)
        assert packet.int_max_util > 0.5

    def test_non_int_switch_does_not_stamp(self):
        sim = Simulator()
        net = build_leaf_spine(sim, RngRegistry(1), LeafSpineConfig(hosts_per_leaf=2))
        leaf = net.switches["L1"]
        dst = net.host_ip("h2_0")
        packet = make_data_packet(FlowKey(net.host_ip("h1_0"), dst, 1, 7471), 0, 100, 0.0)
        packet.int_enabled = True
        leaf.forward(packet, None)
        assert packet.int_max_util == 0.0

    def test_stamp_keeps_running_max(self):
        sim, net = self._int_net()
        packet = make_data_packet(FlowKey(1, 2, 3, 4), 0, 100, 0.0)
        packet.int_enabled = True
        packet.int_max_util = 0.9
        leaf = net.switches["L1"]
        dst = net.host_ip("h2_0")
        packet.inner = FlowKey(net.host_ip("h1_0"), dst, 5, 7471)
        leaf.forward(packet, None)
        assert packet.int_max_util == pytest.approx(0.9)  # idle links can't lower it


class TestEchoRotation:
    def _vswitch(self):
        sim, net, hosts = make_fabric()
        return sim, hosts["h1_0"].vswitch

    def test_one_echo_per_packet(self):
        sim, vswitch = self._vswitch()
        remote = 99
        for port in (1, 2, 3):
            state = _PathEchoState()
            state.ecn_pending = True
            vswitch._echo.setdefault(remote, {})[port] = state
        packet = make_data_packet(FlowKey(1, remote, 5, 80), 0, 100, 0.0)
        vswitch._attach_echo(packet, remote)
        assert packet.stt_echo_port in (1, 2, 3)
        pending = [s for s in vswitch._echo[remote].values() if s.ecn_pending]
        assert len(pending) == 2  # exactly one consumed

    def test_rotation_covers_all_ports(self):
        sim, vswitch = self._vswitch()
        remote = 99
        for port in (1, 2, 3):
            state = _PathEchoState()
            state.util = 0.5
            state.util_fresh = True
            vswitch._echo.setdefault(remote, {})[port] = state
        echoed = []
        for _ in range(3):
            packet = make_data_packet(FlowKey(1, remote, 5, 80), 0, 100, 0.0)
            vswitch._attach_echo(packet, remote)
            echoed.append(packet.stt_echo_port)
        assert sorted(echoed) == [1, 2, 3]

    def test_no_pending_no_echo(self):
        sim, vswitch = self._vswitch()
        packet = make_data_packet(FlowKey(1, 99, 5, 80), 0, 100, 0.0)
        vswitch._attach_echo(packet, 99)
        assert packet.stt_echo_port is None

    def test_relay_interval_blocks_repeat_ecn(self):
        sim, vswitch = self._vswitch()
        vswitch.ecn_relay_interval = 1.0
        remote = 99
        state = _PathEchoState()
        state.ecn_pending = True
        vswitch._echo.setdefault(remote, {})[1] = state
        first = make_data_packet(FlowKey(1, remote, 5, 80), 0, 100, 0.0)
        vswitch._attach_echo(first, remote)
        assert first.stt_echo_ecn
        # New mark arrives immediately: must be held back by the interval.
        state.ecn_pending = True
        second = make_data_packet(FlowKey(1, remote, 5, 80), 0, 100, 0.0)
        vswitch._attach_echo(second, remote)
        assert second.stt_echo_port is None


class TestCongaAging:
    def _leaf(self):
        sim = Simulator()
        leaf = CongaLeafSwitch(sim, "L1", 1, hash_seed=1)
        leaf.uplinks = []
        return sim, leaf

    def test_stored_metric_decays(self):
        sim, leaf = self._leaf()
        leaf.uplinks = [None, None]  # row sizing only

        row = leaf._table_row(leaf.to_table, "L2")
        leaf._store_metric(row, 0, 1.0)
        fresh = leaf._aged_metric(row, 0)
        sim.schedule(5 * leaf.METRIC_AGING, lambda: None)
        sim.run()
        stale = leaf._aged_metric(row, 0)
        assert fresh == pytest.approx(1.0)
        assert stale < 0.05

    def test_unstamped_metric_not_decayed(self):
        sim, leaf = self._leaf()
        leaf.uplinks = [None]
        row = leaf._table_row(leaf.to_table, "L2")
        row[0] = 0.7  # written without _store_metric (no timestamp)
        assert leaf._aged_metric(row, 0) == pytest.approx(0.7)
