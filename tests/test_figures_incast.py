"""Structural tests for the figure drivers and the incast harness.

These use tiny quality settings: they validate shapes, keys and plumbing,
not the paper's numbers (the benchmarks do that at realistic scale).
"""

import pytest

from repro.harness.figures import (
    FigureQuality,
    SIM_SCHEMES,
    TESTBED_SCHEMES,
    capture_ratios,
    fig4b,
    fig5,
    fig6,
    fig9,
    fig9_percentiles,
)
from repro.harness.incast import run_incast

TINY = FigureQuality(loads=(0.3,), seeds=(1,), jobs_per_client=4)


class TestFigureDrivers:
    def test_fig4b_structure(self):
        series = fig4b(TINY)
        assert set(series) == set(TESTBED_SCHEMES)
        for points in series.values():
            assert [l for l, _v in points] == [0.3]
            assert all(v > 0 for _l, v in points)

    def test_fig5_kinds(self):
        for kind in ("mice", "p99"):
            series = fig5(kind, TINY)
            assert set(series) == set(TESTBED_SCHEMES)

    def test_fig5_invalid_kind(self):
        with pytest.raises(ValueError):
            fig5("nope", TINY)

    def test_fig6_has_four_variants(self):
        series = fig6(TINY)
        assert len(series) == 4
        assert any("best" in label for label in series)

    def test_fig9_cdfs(self):
        cdfs = fig9(load=0.3, seed=1, jobs_per_client=4)
        assert set(cdfs) == {"ecmp", "clove-ecn", "conga"}
        for points in cdfs.values():
            assert points[-1][1] == 1.0

    def test_fig9_percentiles(self):
        cdfs = {"x": [(0.001, 0.5), (0.002, 0.9), (0.010, 1.0)]}
        assert fig9_percentiles(cdfs, 0.99) == {"x": 0.010}
        assert fig9_percentiles(cdfs, 0.5) == {"x": 0.001}


class TestCaptureRatios:
    def test_ratio_math(self):
        series = {
            "ecmp": [(0.7, 10.0)],
            "conga": [(0.7, 2.0)],
            "clove-ecn": [(0.7, 3.6)],
            "edge-flowlet": [(0.7, 6.8)],
        }
        ratios = capture_ratios(series, 0.7)
        assert ratios["clove-ecn"] == pytest.approx(0.8)
        assert ratios["edge-flowlet"] == pytest.approx(0.4)

    def test_no_gain_yields_nan(self):
        import math
        series = {"ecmp": [(0.7, 1.0)], "conga": [(0.7, 2.0)], "clove-ecn": [(0.7, 1.5)]}
        ratios = capture_ratios(series, 0.7)
        assert math.isnan(ratios["clove-ecn"])

    def test_missing_load_raises(self):
        series = {"ecmp": [(0.7, 1.0)], "conga": [(0.7, 0.5)], "x": [(0.7, 0.7)]}
        with pytest.raises(KeyError):
            capture_ratios(series, 0.9)


class TestIncastHarness:
    def test_goodput_positive_and_bounded(self):
        goodput = run_incast("clove-ecn", fanout=2, n_requests=2, total_bytes=200_000)
        assert 0 < goodput <= 10e9  # cannot exceed the client's access link

    def test_fanout_one(self):
        goodput = run_incast("edge-flowlet", fanout=1, n_requests=2, total_bytes=200_000)
        assert goodput > 0

    def test_mptcp_scheme(self):
        goodput = run_incast("mptcp", fanout=2, n_requests=2, total_bytes=200_000)
        assert goodput > 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            run_incast("clove-ecn", fanout=0, n_requests=1)
        with pytest.raises(ValueError):
            run_incast("clove-ecn", fanout=999, n_requests=1)

    def test_deterministic(self):
        a = run_incast("clove-ecn", fanout=2, n_requests=2, total_bytes=200_000)
        b = run_incast("clove-ecn", fanout=2, n_requests=2, total_bytes=200_000)
        assert a == pytest.approx(b)
