"""Tests for the MPTCP model (subflows, LIA coupling, DSN reassembly)."""

import pytest

from repro.net.packet import MSS
from repro.transport.mptcp import MptcpConnection, open_mptcp_connection

from tests.conftest import make_fabric


def _open(hosts, n_subflows=4, **kwargs):
    return open_mptcp_connection(
        hosts["h1_0"], hosts["h2_0"], 20000, 80, n_subflows=n_subflows, **kwargs
    )


class TestBasics:
    def test_subflows_have_distinct_tuples(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        tuples = {s.flow.as_tuple() for s in connection.senders}
        assert len(tuples) == 4

    def test_flow_completes(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        done = []
        connection.start_flow(500_000, lambda: done.append(sim.now))
        sim.run(until=2.0)
        assert done
        assert connection.data_rcv_nxt == 500_000

    def test_data_is_spread_over_subflows(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(2_000_000, lambda: None)
        sim.run(until=2.0)
        active = [s for s in connection.senders if s.bytes_sent > 0]
        assert len(active) >= 2

    def test_sequential_flows(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        order = []
        connection.start_flow(100_000, lambda: order.append("a"))
        connection.start_flow(100_000, lambda: order.append("b"))
        sim.run(until=2.0)
        assert order == ["a", "b"]

    def test_single_subflow_degenerates_to_tcp(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts, n_subflows=1)
        done = []
        connection.start_flow(200_000, lambda: done.append(True))
        sim.run(until=2.0)
        assert done

    def test_invalid_subflow_count(self, fabric):
        sim, net, hosts = fabric
        with pytest.raises(ValueError):
            MptcpConnection(sim, n_subflows=0)

    def test_invalid_flow_size(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        with pytest.raises(ValueError):
            connection.start_flow(0, lambda: None)


class TestDsnReassembly:
    def test_out_of_order_dsn_completion(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        fired = []
        connection.start_flow(10 * MSS, lambda: fired.append(True))
        # Simulate out-of-order data-level arrival directly.
        connection.on_data_received(5 * MSS, 5 * MSS)
        assert not fired
        connection.on_data_received(0, 5 * MSS)
        assert fired

    def test_duplicate_data_ignored(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(10 * MSS, lambda: None)
        connection.on_data_received(0, MSS)
        before = connection.data_rcv_nxt
        connection.on_data_received(0, MSS)
        assert connection.data_rcv_nxt == before

    def test_dsn_mapping_is_consistent(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(100 * MSS, lambda: None)
        sim.run(until=0.001)
        for sender in connection.senders:
            for sf_start, dsn_start, length in sender._mappings:
                assert sender._dsn_for(sf_start) == dsn_start
                if length > 1:
                    assert sender._dsn_for(sf_start + length - 1) == dsn_start + length - 1


class TestLia:
    def test_alpha_positive(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(1_000_000, lambda: None)
        sim.run(until=0.01)
        assert connection.lia_alpha() > 0

    def test_coupled_increase_not_faster_than_uncoupled(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(1_000_000, lambda: None)
        sim.run(until=0.001)
        sender = connection.senders[0]
        sender.ssthresh = 0.0  # force congestion avoidance
        cwnd = sender.cwnd
        sender._increase_cwnd(MSS)
        # LIA's min() clause: growth never exceeds standard AIMD growth.
        assert sender.cwnd - cwnd <= MSS * MSS / cwnd + 1e-9

    def test_total_cwnd_sums_subflows(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        assert connection.total_cwnd() == pytest.approx(
            sum(s.cwnd for s in connection.senders)
        )


class TestReinjection:
    def test_disabled_by_default(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts)
        assert not connection.reinjection

    def test_reinjection_remaps_stalled_data(self, fabric):
        sim, net, hosts = fabric
        connection = open_mptcp_connection(
            hosts["h1_0"], hosts["h2_0"], 20000, 80,
            n_subflows=2, reinjection=True, min_rto=2e-3,
        )
        done = []
        connection.start_flow(500_000, lambda: done.append(sim.now))
        sim.run(until=1e-4)
        net.fail_cable("h1_0", "L1")
        sim.run(until=5e-3)
        net.recover_cable("h1_0", "L1")
        sim.run(until=2.0)
        assert done
        assert connection.reinjected_bytes > 0

    def test_outstanding_ranges_shrink_with_acks(self, fabric):
        sim, net, hosts = fabric
        connection = _open(hosts, n_subflows=2)
        connection.start_flow(200_000, lambda: None)
        sim.run(until=1e-5)
        sender = max(connection.senders, key=lambda s: s.app_bytes)
        before = sum(l for _d, l in sender.outstanding_dsn_ranges())
        sim.run(until=1.0)
        after = sum(l for _d, l in sender.outstanding_dsn_ranges())
        assert after <= before
        assert after == 0  # everything delivered and acked


class TestStaticMapping:
    def test_mapping_never_reassigned_across_subflows(self, fabric):
        """A DSN range granted to one subflow stays there (v0.89 behaviour
        the paper highlights: no opportunistic reinjection)."""
        sim, net, hosts = fabric
        connection = _open(hosts)
        connection.start_flow(500_000, lambda: None)
        sim.run(until=1.0)
        seen = {}
        for i, sender in enumerate(connection.senders):
            for _sf, dsn, length in sender._mappings:
                for other, rng in seen.items():
                    for d, l in rng:
                        assert not (dsn < d + l and d < dsn + length), (
                            f"DSN overlap between subflows {i} and {other}"
                        )
                seen.setdefault(i, []).append((dsn, length))
