"""End-to-end telemetry: instrumented experiments, the CLI artifact flow,
and the path-tracer bridge."""

import pytest

from repro.cli import main
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.incast import run_incast
from repro.harness.sweep import average_over_seeds
from repro.net.tracing import PathTracer
from repro.telemetry import EventLog, Telemetry, load_jsonl
from repro.transport.tcp import open_connection

from tests.conftest import make_fabric


def _small_config(**overrides):
    defaults = dict(scheme="clove-ecn", load=0.7, seed=1, jobs_per_client=6,
                    flow_scale=0.05, max_sim_time=5.0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestInstrumentedExperiment:
    def test_run_collects_events_counters_and_manifest(self):
        tel = Telemetry()
        result = run_experiment(_small_config(), telemetry=tel)

        assert result.telemetry is tel
        manifest = result.manifest
        assert manifest is not None and manifest in tel.manifests
        assert manifest["scheme"] == "clove-ecn"
        assert manifest["seed"] == 1
        assert manifest["wall_s"] > 0
        assert manifest["sim_events"] == result.wall_events
        assert manifest["config"]["jobs_per_client"] == 6

        # The acceptance bar: at least four distinct event types, spanning
        # hypervisor (flowlet), Clove control (weights/echo) and the fabric.
        types = set(tel.events.counts_by_type())
        assert "run.start" in types
        assert "flowlet.new" in types
        assert "clove.weight_update" in types
        assert "clove.ecn_echo" in types
        assert "switch.ecn_mark" in types

        counters = tel.registry.snapshot()["counters"]
        assert any(k.startswith("link.tx_packets") for k in counters)
        assert any(k.startswith("vswitch.tx_encapsulated") for k in counters)
        assert counters["jobs.completed"] > 0
        histograms = tel.registry.snapshot()["histograms"]
        assert histograms["fct_seconds"]["count"] > 0

    def test_uninstrumented_run_carries_no_telemetry(self):
        result = run_experiment(_small_config())
        assert result.telemetry is None
        assert result.manifest is None

    def test_profiled_run_accounts_engine_time(self):
        tel = Telemetry(profile=True)
        result = run_experiment(_small_config(), telemetry=tel)
        prof = tel.profiler
        assert prof.events == result.wall_events
        assert prof.heap_high_water > 0
        assert prof.events_per_sec > 0
        assert prof.callbacks  # per-callback-type breakdown exists

    def test_sweep_shares_one_scope_across_seeds(self):
        tel = Telemetry()
        average_over_seeds(_small_config(), seeds=(1, 2), telemetry=tel)
        assert len(tel.manifests) == 2
        assert {m["seed"] for m in tel.manifests} == {1, 2}
        assert len(tel.events.events("run.start")) == 2

    def test_incast_reports_into_scope(self):
        tel = Telemetry()
        goodput = run_incast(scheme="clove-ecn", fanout=2, n_requests=2,
                             total_bytes=200_000, telemetry=tel)
        assert goodput > 0
        (manifest,) = tel.manifests
        assert manifest["run"] == "incast"
        assert manifest["fanout"] == 2
        assert manifest["goodput_bps"] == goodput
        assert len(tel.events) > 0


class TestCliTelemetry:
    def test_run_telemetry_out_then_inspect(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        rc = main(["run", "clove-ecn", "--jobs-per-client", "6", "--flow-scale", "0.05",
                   "--telemetry-out", str(out)])
        assert rc == 0
        assert out.exists()

        dump = load_jsonl(str(out))
        assert len(dump["manifests"]) == 1
        assert dump["counters"]
        assert len({e["type"] for e in dump["events"]}) >= 4

        capsys.readouterr()
        assert main(["telemetry", str(out)]) == 0
        text = capsys.readouterr().out
        assert "scheme=clove-ecn" in text
        assert "counters" in text
        assert "flowlet.new" in text

    def test_run_profile_flag_prints_summary(self, tmp_path, capsys):
        rc = main(["run", "ecmp", "--jobs-per-client", "4", "--flow-scale", "0.05",
                   "--profile"])
        assert rc == 0
        assert "events/s" in capsys.readouterr().err

    def test_incast_telemetry_out(self, tmp_path):
        out = tmp_path / "incast.jsonl"
        rc = main(["incast", "--fanouts", "2", "--requests", "2",
                   "--bytes", "200000", "--telemetry-out", str(out)])
        assert rc == 0
        dump = load_jsonl(str(out))
        assert dump["manifests"][0]["run"] == "incast"

    def test_telemetry_missing_file_errors(self, capsys):
        # unreadable input is a usage error: exit 2 (see test_cli_errors.py)
        assert main(["telemetry", "/nonexistent/run.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_telemetry_corrupt_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json {\n")
        assert main(["telemetry", str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unwritable_telemetry_out_fails_before_running(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "ecmp", "--telemetry-out", "/nonexistent-dir/x.jsonl"])
        assert excinfo.value.code == 2
        assert "cannot write" in capsys.readouterr().err


class TestPathTracerBridge:
    def _traced_fabric(self):
        sim, net, hosts = make_fabric()
        tracer = PathTracer(match=lambda p: p.payload_bytes > 0)
        hosts["h1_0"].send_from_guest = tracer.wrap(hosts["h1_0"].send_from_guest)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(100_000, lambda: None)
        sim.run(until=1.0)
        return tracer

    def test_to_events_emits_into_scope(self):
        tracer = self._traced_fabric()
        tel = Telemetry()
        emitted = tracer.to_events(tel)
        assert emitted == len(tracer.paths())
        events = tel.events.events("path.trace")
        assert len(events) == emitted
        sample = events[0]
        assert sample.fields["path"][0] == "L1"
        assert sample.fields["path"][-1] == "L2"
        assert sample.fields["sport"] == 1000
        assert sample.time == pytest.approx(tracer.traced[0].created_at)

    def test_to_events_accepts_bare_event_log(self):
        tracer = self._traced_fabric()
        log = EventLog()
        assert tracer.to_events(log) == len(tracer.paths())
        assert log.counts_by_type()["path.trace"] == len(tracer.paths())

    def test_to_events_skips_untraced_packets(self):
        tracer = PathTracer()
        log = EventLog()
        assert tracer.to_events(log) == 0
        assert len(log) == 0
