"""Tests for the in-network baselines: CONGA and LetFlow."""

import pytest

from repro.baselines.conga import (
    CE,
    CongaLeafSwitch,
    CongaSpineSwitch,
    LBTAG,
    configure_conga,
)
from repro.baselines.letflow import LetFlowSwitch
from repro.hypervisor.host import Host
from repro.net.packet import FlowKey, make_data_packet
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine
from repro.transport.tcp import open_connection


def _conga_fabric(hosts_per_leaf=2, asymmetric=False):
    sim = Simulator()
    cfg = LeafSpineConfig(
        hosts_per_leaf=hosts_per_leaf,
        leaf_switch_class=CongaLeafSwitch,
        spine_switch_class=CongaSpineSwitch,
    )
    net = build_leaf_spine(sim, RngRegistry(1), cfg)
    configure_conga(net, flowlet_gap=1e-4)
    if asymmetric:
        net.fail_cable("L2", "S2", 0)
    hosts = {name: Host(sim, net, name) for name in sorted(net.hosts)}
    return sim, net, hosts


class TestCongaSetup:
    def test_configure_wires_uplinks(self):
        sim, net, hosts = _conga_fabric()
        leaf = net.switches["L1"]
        assert [l.name for l in leaf.uplinks] == [
            "L1->S1#0", "L1->S1#1", "L1->S2#0", "L1->S2#1",
        ]
        assert leaf.cables_per_pair == 2

    def test_local_and_remote_ips_partitioned(self):
        sim, net, hosts = _conga_fabric()
        leaf = net.switches["L1"]
        assert net.host_ip("h1_0") in leaf.local_ips
        assert leaf.leaf_of[net.host_ip("h2_0")] == "L2"

    def test_configure_requires_conga_switches(self):
        sim = Simulator()
        net = build_leaf_spine(sim, RngRegistry(1), LeafSpineConfig(hosts_per_leaf=1))
        with pytest.raises(ValueError):
            configure_conga(net)


class TestCongaDataPath:
    def test_flow_completes(self):
        sim, net, hosts = _conga_fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(500_000, lambda: done.append(sim.now))
        sim.run(until=2.0)
        assert done

    def test_conga_metadata_stripped_at_destination_leaf(self):
        sim, net, hosts = _conga_fabric()
        received = []
        orig = hosts["h2_0"].receive
        net.register_host_receiver(
            "h2_0", lambda p: (received.append(p), orig(p))
        )
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(50_000, lambda: None)
        sim.run(until=1.0)
        assert received
        assert all(LBTAG not in p.meta and CE not in p.meta for p in received)

    def test_congestion_tables_populated(self):
        sim, net, hosts = _conga_fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(2_000_000, lambda: None)
        sim.run(until=2.0)
        l2 = net.switches["L2"]
        assert "L1" in l2.from_table
        assert any(v > 0 for v in l2.from_table["L1"])
        # Feedback flowed back on the ACK stream into L1's to-table.
        l1 = net.switches["L1"]
        assert "L2" in l1.to_table

    def test_asymmetry_shifts_traffic_off_bottleneck(self):
        sim, net, hosts = _conga_fabric(asymmetric=True)
        connections = [
            open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80),
            open_connection(hosts["h1_1"], hosts["h2_1"], 1001, 80),
        ]
        for connection in connections:
            for _ in range(4):
                connection.start_flow(2_000_000, lambda: None)
        sim.run(until=3.0)
        leaf = net.switches["L1"]
        s1_bytes = sum(l.tx_bytes for l in leaf.uplinks[:2])
        s2_bytes = sum(l.tx_bytes for l in leaf.uplinks[2:])
        # S2's downlink capacity halved: CONGA must send it less than S1.
        assert s2_bytes < s1_bytes

    def test_spine_honours_lbtag(self):
        sim, net, hosts = _conga_fabric()
        spine = net.switches["S1"]
        live = net.links[("S1", "L2")]
        packet = make_data_packet(
            FlowKey(net.host_ip("h1_0"), net.host_ip("h2_0"), 7, 7471), 0, 100, 0.0
        )
        packet.meta[LBTAG] = 1
        chosen = spine.select_port(packet, packet.route_key, list(live), None)
        assert chosen is live[1]


class TestLetFlow:
    def _fabric(self):
        sim = Simulator()
        cfg = LeafSpineConfig(hosts_per_leaf=2, switch_class=LetFlowSwitch)
        net = build_leaf_spine(sim, RngRegistry(1), cfg)
        hosts = {name: Host(sim, net, name) for name in sorted(net.hosts)}
        return sim, net, hosts

    def test_flow_completes(self):
        sim, net, hosts = self._fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(500_000, lambda: done.append(True))
        sim.run(until=2.0)
        assert done

    def test_flowlets_pin_within_gap(self):
        sim = Simulator()
        switch = LetFlowSwitch(sim, "X", 1, hash_seed=1, flowlet_gap=1.0)
        from repro.net.link import Link
        live = [Link(sim, f"l{i}", 1e9, 0.0) for i in range(4)]
        key = FlowKey(1, 2, 3, 4)
        packet = make_data_packet(key, 0, 100, 0.0)
        first = switch.select_port(packet, key, live, None)
        for _ in range(10):
            assert switch.select_port(packet, key, live, None) is first

    def test_new_flowlet_can_switch(self):
        sim = Simulator()
        switch = LetFlowSwitch(sim, "X", 1, hash_seed=1, flowlet_gap=1e-9)
        from repro.net.link import Link
        live = [Link(sim, f"l{i}", 1e9, 0.0) for i in range(4)]
        key = FlowKey(1, 2, 3, 4)
        packet = make_data_packet(key, 0, 100, 0.0)
        chosen = set()
        for i in range(50):
            sim.schedule(1e-6, lambda: None)
            sim.run()  # advance time beyond the gap
            chosen.add(switch.select_port(packet, key, live, None).name)
        assert len(chosen) > 1
