"""Unit tests for the telemetry subsystem (registry, events, profiler,
manifests, JSONL round-trips, rendering)."""

import json

import pytest

from repro.sim.engine import Simulator
from repro.telemetry import (
    NULL_INSTRUMENT,
    NULL_TELEMETRY,
    EventLog,
    MetricsRegistry,
    SimProfiler,
    Telemetry,
    callback_name,
    format_key,
    git_revision,
    load_jsonl,
    read_jsonl,
)
from repro.telemetry.registry import DEFAULT_BUCKETS
from repro.telemetry.render import render_dump


class TestRegistry:
    def test_counter_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("drops", link="L1")
        b = reg.counter("drops", link="L1")
        c = reg.counter("drops", link="L2")
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2.0)
        assert a.value == 3.0
        assert c.value == 0.0

    def test_counter_set_total_is_idempotent(self):
        reg = MetricsRegistry()
        counter = reg.counter("rx")
        counter.set_total(10)
        counter.set_total(10)
        assert counter.value == 10.0

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 4.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_format_key(self):
        reg = MetricsRegistry()
        counter = reg.counter("drops", link="L1", reason="full")
        assert format_key(counter.key) == "drops{link=L1,reason=full}"
        assert format_key(reg.counter("plain").key) == "plain"

    def test_disabled_registry_hands_out_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("drops", link="L1")
        assert counter is NULL_INSTRUMENT
        assert reg.gauge("g") is NULL_INSTRUMENT
        assert reg.histogram("h") is NULL_INSTRUMENT
        # all mutators are no-ops
        counter.inc()
        counter.set_total(5)
        counter.observe(1.0)
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_observe_and_quantiles(self):
        hist = MetricsRegistry().histogram("lat", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(0.0605 / 4)
        assert hist.maximum == 0.05
        assert hist.quantile(0.5) == 0.01  # 2nd obs falls in the 0.01 bucket
        assert hist.quantile(1.0) == 0.1   # bucket-resolution upper bound
        hist.observe(0.5)                  # beyond the last bound -> +inf
        assert hist.quantile(1.0) == 0.5   # +inf bucket reports the true max

    def test_histogram_empty_quantile_and_bounds_check(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_default_buckets_to_dict(self):
        hist = MetricsRegistry().histogram("fct_seconds")
        hist.observe(0.002)
        d = hist.to_dict()
        assert d["count"] == 1
        assert set(d["buckets"]) == {str(b) for b in DEFAULT_BUCKETS} | {"+inf"}
        assert sum(d["buckets"].values()) == 1

    def test_snapshot_renders_keys(self):
        reg = MetricsRegistry()
        reg.counter("drops", link="L1").inc()
        reg.gauge("util", link="L1").set(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"drops{link=L1}": 1.0}
        assert snap["gauges"] == {"util{link=L1}": 0.5}


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("flowlet.new", 0.1, src=1, dst=2)
        log.emit("switch.drop", 0.2, link="L1")
        log.emit("flowlet.new", 0.3, src=3, dst=4)
        assert len(log) == 3
        assert log.emitted == 3
        assert log.dropped == 0
        assert [e.type for e in log.events("flowlet.new")] == ["flowlet.new"] * 2
        assert log.counts_by_type() == {"flowlet.new": 2, "switch.drop": 1}
        assert [e.type for e in log.tail(2)] == ["switch.drop", "flowlet.new"]

    def test_ring_buffer_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("tick", float(i), i=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e.fields["i"] for e in log] == [2, 3, 4]

    def test_disabled_log_is_noop(self):
        log = EventLog(enabled=False)
        log.emit("tick", 0.0)
        assert len(log) == 0
        assert log.emitted == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("flowlet.new", 0.25, src=1, port=42)
        path = tmp_path / "events.jsonl"
        with open(path, "w") as fp:
            assert log.write_jsonl(fp) == 1
        records = read_jsonl(str(path))
        assert records == [
            {"kind": "event", "time": 0.25, "type": "flowlet.new",
             "src": 1, "port": 42}
        ]


class TestProfiler:
    def test_callback_name(self):
        assert callback_name(TestProfiler.test_callback_name).endswith(
            "TestProfiler.test_callback_name"
        )

    def test_record_and_rank(self):
        prof = SimProfiler()
        prof.record_callback("a", 0.2)
        prof.record_callback("a", 0.2)
        prof.record_callback("b", 0.5)
        prof.record_run(3, 1.0)
        assert prof.events_per_sec == pytest.approx(3.0)
        top = prof.top_callbacks(1)
        assert top[0]["callback"] == "b"
        assert prof.callbacks["a"].mean_us == pytest.approx(0.2e6)

    def test_engine_integration(self):
        sim = Simulator()
        sim.profiler = SimProfiler()
        fired = []
        for _ in range(4):
            sim.schedule(0.1, fired.append, 1)
        cancelled = sim.schedule(0.2, fired.append, 2)
        cancelled.cancel()
        sim.run(until=1.0)
        assert len(fired) == 4
        prof = sim.profiler
        assert prof.events == 4  # cancelled events are not counted
        assert prof.runs == 1
        assert prof.heap_high_water == 5
        assert sum(s.count for s in prof.callbacks.values()) == 4
        assert "events/s" in prof.format_summary()

    def test_profiled_run_respects_max_events_interrupt(self):
        sim = Simulator()
        sim.profiler = SimProfiler()
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run(until=5.0, max_events=4)
        assert sim.now == pytest.approx(0.4)
        assert sim.profiler.events == 4


class TestTelemetryScope:
    def test_null_telemetry_is_disabled_and_inert(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.events.emit("tick", 0.0)
        manifest = NULL_TELEMETRY.manifest(run="x")
        assert len(NULL_TELEMETRY.events) == 0
        assert NULL_TELEMETRY.manifests == []
        assert manifest["run"] == "x"  # still returned for caller convenience

    def test_manifest_records_provenance(self):
        tel = Telemetry()
        manifest = tel.manifest(run="experiment", scheme="clove-ecn", seed=3)
        assert tel.manifests == [manifest]
        assert manifest["kind"] == "manifest"
        assert manifest["scheme"] == "clove-ecn"
        assert manifest["git_rev"] == git_revision()
        assert "recorded_unix" in manifest

    def test_profiler_only_when_requested(self):
        assert Telemetry().profiler is None
        assert Telemetry(profile=True).profiler is not None
        assert Telemetry(enabled=False, profile=True).profiler is None

    def test_export_and_load_round_trip(self, tmp_path):
        tel = Telemetry(profile=True)
        tel.manifest(run="test", scheme="ecmp", seed=1)
        tel.registry.counter("drops", link="L1").inc(7)
        tel.registry.gauge("util", link="L1").set(0.25)
        tel.registry.histogram("fct_seconds").observe(0.004)
        tel.events.emit("flowlet.new", 0.1, src=1)
        tel.profiler.record_run(100, 0.5)
        path = tmp_path / "run.jsonl"
        tel.export_jsonl(str(path))

        dump = load_jsonl(str(path))
        assert len(dump["manifests"]) == 1
        assert dump["counters"]["drops{link=L1}"] == 7.0
        assert dump["gauges"]["util{link=L1}"] == 0.25
        assert dump["histograms"]["fct_seconds"]["count"] == 1
        assert dump["profile"]["events"] == 100
        assert dump["events_dropped"] == 0
        assert [e["type"] for e in dump["events"]] == ["flowlet.new"]

    def test_export_serializes_non_json_config_values(self, tmp_path):
        tel = Telemetry()
        tel.manifest(run="x", config={"switch_class": Simulator})
        path = tmp_path / "run.jsonl"
        tel.export_jsonl(str(path))
        with open(path) as fp:
            record = json.loads(fp.readline())
        assert "Simulator" in record["config"]["switch_class"]

    def test_export_records_dropped_events(self, tmp_path):
        tel = Telemetry(event_capacity=2)
        for i in range(5):
            tel.events.emit("tick", float(i))
        path = tmp_path / "run.jsonl"
        tel.export_jsonl(str(path))
        dump = load_jsonl(str(path))
        assert dump["events_dropped"] == 3
        assert len(dump["events"]) == 2

    def test_render_dump_all_sections(self, tmp_path):
        tel = Telemetry(profile=True)
        tel.manifest(run="test", scheme="ecmp", seed=1, load=0.7)
        tel.registry.counter("drops", link="L1").inc(3)
        tel.registry.histogram("fct_seconds").observe(0.01)
        tel.events.emit("switch.drop", 0.2, link="L1")
        tel.profiler.record_run(10, 0.1)
        path = tmp_path / "run.jsonl"
        tel.export_jsonl(str(path))
        text = render_dump(load_jsonl(str(path)))
        assert "scheme=ecmp" in text
        assert "drops{link=L1}" in text
        assert "fct_seconds" in text
        assert "switch.drop" in text
        assert "profile:" in text

    def test_render_dump_empty(self):
        text = render_dump(
            {"manifests": [], "counters": {}, "gauges": {}, "histograms": {},
             "profile": None, "events": [], "events_dropped": 0}
        )
        assert "(no manifests)" in text
        assert "(events: none)" in text
