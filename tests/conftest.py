"""Shared fixtures: a tiny two-host network with pluggable policies."""

from typing import Dict, Optional, Tuple

import pytest

from repro.hypervisor.host import Host
from repro.hypervisor.policy import LoadBalancer
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.leafspine import LeafSpineConfig, build_leaf_spine
from repro.topology.network import Network


def make_fabric(
    hosts_per_leaf: int = 2,
    policy_factory=None,
    seed: int = 1,
    **topo_overrides,
) -> Tuple[Simulator, Network, Dict[str, Host]]:
    """Build a small leaf-spine fabric with hosts attached.

    ``policy_factory(host_name, index)`` returns the LoadBalancer for each
    host (None -> non-overlay pass-through).
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    cfg = LeafSpineConfig(hosts_per_leaf=hosts_per_leaf, **topo_overrides)
    net = build_leaf_spine(sim, rng, cfg)
    hosts = {}
    for index, name in enumerate(sorted(net.hosts)):
        policy = policy_factory(name, index) if policy_factory else None
        hosts[name] = Host(sim, net, name, policy)
    return sim, net, hosts


@pytest.fixture
def fabric():
    """Default two-hosts-per-leaf fabric without overlay policies."""
    return make_fabric()
