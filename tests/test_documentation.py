"""Documentation hygiene: every public module/class/function is documented.

A reproduction is only adoptable if its public surface is explained; this
test walks the package and fails on any public item without a docstring.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULES = {"repro.__main__"}


def _public_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in IGNORED_MODULES:
            continue
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        out.append(importlib.import_module(info.name))
    return out


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _public_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_is_documented():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
            elif inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_") or not inspect.isfunction(attr):
                        continue
                    if not inspect.getdoc(attr):
                        missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert not missing, "undocumented public items:\n  " + "\n  ".join(missing)


def test_package_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ lists missing attribute {name}"
