"""Parallel-path tests for repro.runner: determinism, resume, crash/timeout.

These are the acceptance tests of the runner subsystem: a parallel sweep
must be bit-identical to the serial one, a second invocation against the
same cache dir must execute nothing, and worker crashes/timeouts must be
retried and then surfaced — never hang the batch.
"""

import os
import time

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.harness.sweep import series_equal, sweep_loads
from repro.runner import JobSpec, RunnerConfig, run_jobs
from repro.telemetry import Telemetry

SCHEMES = ("ecmp", "clove-ecn")
LOADS = (0.3, 0.5, 0.7)
SEEDS = (1, 2, 3)


def _base() -> ExperimentConfig:
    return ExperimentConfig(
        jobs_per_client=4, clients_per_leaf=2, connections_per_client=1
    )


def test_parallel_sweep_matches_serial_bit_for_bit():
    """2 schemes x 3 loads x 3 seeds: jobs=4 must equal jobs=1 exactly."""
    serial = sweep_loads(
        _base(), SCHEMES, LOADS, seeds=SEEDS, runner=RunnerConfig(jobs=1)
    )
    parallel = sweep_loads(
        _base(), SCHEMES, LOADS, seeds=SEEDS, runner=RunnerConfig(jobs=4)
    )
    assert series_equal(serial, parallel)


def test_parallel_sweep_matches_serial_under_audit_digest():
    """The serial-vs-parallel identity, re-proven by the audit digest: the
    same grid run with ``audit="report"`` must yield identical event-stream
    digests (and clean reports) from jobs=1 and jobs=4 executions."""
    import dataclasses

    base = dataclasses.replace(_base(), audit="report")
    specs = [
        JobSpec.experiment(
            dataclasses.replace(base, scheme=scheme, load=load, seed=seed)
        )
        for scheme in SCHEMES
        for load in LOADS[:2]
        for seed in SEEDS[:2]
    ]
    serial = run_jobs(list(specs), runner=RunnerConfig(jobs=1))
    parallel = run_jobs(list(specs), runner=RunnerConfig(jobs=4))
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert s.audit["ok"] and p.audit["ok"]
        assert s.audit["digest"] == p.audit["digest"]


def test_second_invocation_runs_nothing(tmp_path, monkeypatch):
    """With a warm cache every grid point is served without executing."""
    runner = RunnerConfig(jobs=4, cache_dir=str(tmp_path))
    first = sweep_loads(_base(), SCHEMES, LOADS[:2], seeds=SEEDS[:2], runner=runner)

    def boom(*args, **kwargs):
        raise AssertionError("run_experiment must not be called on a warm cache")

    monkeypatch.setattr("repro.harness.experiment.run_experiment", boom)
    second = sweep_loads(_base(), SCHEMES, LOADS[:2], seeds=SEEDS[:2], runner=runner)
    assert series_equal(first, second)


def test_interrupted_grid_resumes(tmp_path):
    """A cache holding a prefix of the grid only re-runs the missing points."""
    runner = RunnerConfig(cache_dir=str(tmp_path))
    specs = [
        JobSpec.experiment(
            ExperimentConfig(
                scheme=scheme, load=0.3, seed=seed,
                jobs_per_client=4, clients_per_leaf=2, connections_per_client=1,
            )
        )
        for scheme in SCHEMES
        for seed in (1, 2)
    ]
    run_jobs(specs[:2], runner=runner)  # the "interrupted" first half
    results = run_jobs(specs, runner=runner)
    assert [r.cached for r in results] == [True, True, False, False]
    assert all(r.ok for r in results)


def test_parallel_telemetry_merges_into_parent():
    """Each pooled worker's telemetry dump lands in the parent scope."""
    telemetry = Telemetry()
    specs = [
        JobSpec.experiment(
            ExperimentConfig(
                scheme="ecmp", load=0.3, seed=seed,
                jobs_per_client=4, clients_per_leaf=2, connections_per_client=1,
            )
        )
        for seed in (1, 2, 3)
    ]
    results = run_jobs(specs, runner=RunnerConfig(jobs=2), telemetry=telemetry)
    assert all(r.ok for r in results)
    assert len(telemetry.manifests) == len(specs)
    counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in telemetry.registry.dump()["counters"]
    }
    assert counters, "worker metric registries must merge into the parent"
    assert any(value > 0 for value in counters.values())
    assert len(telemetry.events) > 0


def test_worker_crash_is_retried_then_surfaced(monkeypatch):
    """A hard worker death consumes retries and ends as a terminal error."""
    def die(*args, **kwargs):
        os._exit(13)

    # Patch before the pool exists: fork inherits the patched module.
    monkeypatch.setattr("repro.harness.experiment.run_experiment", die)
    specs = [JobSpec.experiment(_base()), JobSpec.experiment(
        ExperimentConfig(jobs_per_client=4, clients_per_leaf=2,
                         connections_per_client=1, seed=2)
    )]
    results = run_jobs(specs, runner=RunnerConfig(jobs=2, retries=1))
    assert all(not r.ok for r in results)
    for result in results:
        assert "crashed" in result.error
        assert result.attempts == 2  # 1 initial + 1 retry


def test_stuck_worker_times_out(monkeypatch):
    """A worker that never returns is killed at the deadline, not awaited."""
    def hang(*args, **kwargs):
        time.sleep(60)

    monkeypatch.setattr("repro.harness.experiment.run_experiment", hang)
    specs = [JobSpec.experiment(_base()), JobSpec.experiment(
        ExperimentConfig(jobs_per_client=4, clients_per_leaf=2,
                         connections_per_client=1, seed=2)
    )]
    start = time.monotonic()
    results = run_jobs(
        specs, runner=RunnerConfig(jobs=2, timeout=1.0, retries=0)
    )
    elapsed = time.monotonic() - start
    assert elapsed < 30, "timed-out workers must not be awaited to completion"
    assert all(not r.ok for r in results)
    for result in results:
        assert "timed out" in result.error
        assert result.attempts == 1


def test_ordinary_exception_in_worker_not_retried():
    """Deterministic failures surface once, even on the pooled path."""
    specs = [
        JobSpec.experiment(ExperimentConfig(scheme="bogus", seed=seed))
        for seed in (1, 2)
    ]
    results = run_jobs(specs, runner=RunnerConfig(jobs=2, retries=5))
    assert all(not r.ok for r in results)
    for result in results:
        assert "bogus" in result.error
        assert result.attempts == 1


@pytest.mark.parametrize("jobs", [1, 3])
def test_incast_jobs_run_through_runner(jobs):
    """Incast specs execute on both paths and produce a goodput payload."""
    specs = [
        JobSpec.incast(
            scheme="ecmp", fanout=2, seed=seed, n_requests=2,
            total_bytes=100_000,
        )
        for seed in (1, 2)
    ]
    results = run_jobs(specs, runner=RunnerConfig(jobs=jobs))
    assert all(r.ok for r in results)
    for result in results:
        assert result.metrics["goodput_bps"] > 0
