"""Tests for repro.chaos: plans, engine, recovery metrics, cache interplay.

Covers the fault-injection subsystem end to end: FaultPlan validation and
JSON round-trips, fingerprint stability across processes, warm-cache
invalidation on a schema bump, ChaosEngine application semantics (flush
accounting, exact rate restoration, KeyError on unknown cables), the
recovery-metric core, offline/in-process metric parity, and the headline
behavioural claim — Clove-ECN rides out a flap that makes ECMP's goodput
dip.
"""

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import (
    ChaosEngine,
    FaultEvent,
    FaultPlan,
    PRESETS,
    compute_recovery,
    degraded,
    fault_windows,
    flap,
    FlowSample,
    multi_failure_plan,
    preset,
    random_plan,
    recovery_from_records,
    recovery_from_result,
    single_cable,
)
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import METRIC_KEYS, standard_metrics
from repro.runner import JobSpec, ResultCache, RunnerConfig, run_jobs
from repro.telemetry import Telemetry


def _metrics_equal(a, b) -> bool:
    """Bit-exact dict equality where NaN == NaN (empty buckets are NaN, and
    NaN never compares equal to itself under plain ``==``)."""
    if set(a) != set(b):
        return False
    for key, value in a.items():
        other = b[key]
        if isinstance(value, float) and math.isnan(value):
            if not (isinstance(other, float) and math.isnan(other)):
                return False
        elif value != other:
            return False
    return True


def _quick(scheme="ecmp", **overrides) -> ExperimentConfig:
    defaults = dict(
        scheme=scheme,
        load=0.3,
        jobs_per_client=4,
        clients_per_leaf=2,
        connections_per_client=1,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# ----------------------------------------------------------------------
# FaultPlan model
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_events_sort_by_time_stably(self):
        plan = FaultPlan((
            FaultEvent(0.5, "link_up", "L2", "S2"),
            FaultEvent(0.1, "link_down", "L2", "S2"),
            FaultEvent(0.1, "link_down", "L1", "S1"),
        ))
        assert [e.time for e in plan.events] == [0.1, 0.1, 0.5]
        # same-instant events keep authored order
        assert plan.events[0].a == "L2" and plan.events[1].a == "L1"

    def test_validation_rejects_bad_events(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan((FaultEvent(0.0, "explode", "L2", "S2"),))
        with pytest.raises(ValueError, match="distinct endpoints"):
            FaultPlan((FaultEvent(0.0, "link_down", "L2", "L2"),))
        with pytest.raises(ValueError, match="factor"):
            FaultPlan((FaultEvent(0.0, "degrade", "L2", "S2", factor=1.5),))
        with pytest.raises(ValueError, match="downtime < period"):
            FaultPlan((FaultEvent(0.0, "flap", "L2", "S2",
                                  period=0.1, downtime=0.2, count=2),))

    def test_flap_expands_to_down_up_pairs(self):
        plan = flap("L2", "S2", start=1.0, period=0.5, downtime=0.2, flaps=2)
        prims = plan.expanded()
        assert [(e.time, e.action) for e in prims] == [
            (1.0, "link_down"), (1.2, "link_up"),
            (1.5, "link_down"), (1.7, "link_up"),
        ]

    def test_json_round_trip_is_lossless(self):
        plan = (flap("L2", "S2", start=0.03)
                + degraded("L1", "S1", factor=0.5, time=0.01, duration=0.02)
                + single_cable("L2", "S1", index=1, time=0.005))
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        # and a second round trip is byte-identical (stable serialization)
        assert restored.to_json() == plan.to_json()

    def test_from_json_rejects_malformed_input(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="events"):
            FaultPlan.from_json('{"other": 1}')
        with pytest.raises(ValueError, match="unknown fault event field"):
            FaultPlan.from_json(
                '{"events": [{"time": 0, "action": "link_down",'
                ' "a": "L2", "b": "S2", "bogus": 1}]}'
            )

    def test_plans_compose_with_plus(self):
        combined = single_cable(time=0.2) + single_cable("L1", "S1", time=0.1)
        assert [e.time for e in combined.events] == [0.1, 0.2]

    def test_fault_windows_merge_overlaps(self):
        events = [
            FaultEvent(1.0, "link_down", "L2", "S2"),
            FaultEvent(2.0, "link_down", "L1", "S1"),
            FaultEvent(3.0, "link_up", "L2", "S2"),
            FaultEvent(4.0, "link_up", "L1", "S1"),
            FaultEvent(10.0, "degrade", "L2", "S1", factor=0.5),
            FaultEvent(11.0, "restore", "L2", "S1"),
        ]
        assert fault_windows(events) == [(1.0, 4.0), (10.0, 11.0)]

    def test_open_window_closes_at_end(self):
        assert single_cable(time=1.0).fault_windows(end=5.0) == [(1.0, 5.0)]

    def test_full_rate_degrade_is_not_a_fault(self):
        events = [FaultEvent(1.0, "degrade", "L2", "S2", factor=1.0)]
        assert fault_windows(events, end=2.0) == []

    def test_every_preset_builds_and_round_trips(self):
        for name in PRESETS:
            plan = preset(name)
            assert plan, name
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_preset_lists_available(self):
        with pytest.raises(KeyError, match="single-cable"):
            preset("nope")


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        assert random_plan(seed=7) == random_plan(seed=7)
        assert random_plan(seed=7) != random_plan(seed=8)

    def test_never_partitions_a_node(self):
        """At every instant each node keeps >= min_live_per_node live cables."""
        for seed in range(12):
            plan = random_plan(seed=seed, n_faults=8)
            prims = plan.expanded()
            per_node = {}
            for a, b in (
                ("L1", "S1"), ("L1", "S1"), ("L1", "S2"), ("L1", "S2"),
                ("L2", "S1"), ("L2", "S1"), ("L2", "S2"), ("L2", "S2"),
            ):
                per_node[a] = per_node.get(a, 0) + 1
                per_node[b] = per_node.get(b, 0) + 1
            down = {}
            for event in prims:
                nodes = (event.a, event.b)
                if event.action in ("link_down", "degrade"):
                    for node in nodes:
                        down[node] = down.get(node, 0) + 1
                        assert per_node[node] - down[node] >= 1, (
                            f"seed {seed} left {node} without a live cable"
                        )
                elif event.action in ("link_up", "restore"):
                    for node in nodes:
                        down[node] -= 1


# ----------------------------------------------------------------------
# ChaosEngine against a live fabric
# ----------------------------------------------------------------------
class TestChaosEngine:
    def test_unknown_cable_fails_fast(self, fabric):
        sim, net, _hosts = fabric
        with pytest.raises(KeyError, match="connected pairs"):
            ChaosEngine(sim, net, single_cable("L2", "S9"))
        with pytest.raises(KeyError, match="out of range"):
            ChaosEngine(sim, net, single_cable("L2", "S2", index=9))

    def test_due_events_apply_synchronously_on_start(self, fabric):
        sim, net, _hosts = fabric
        engine = ChaosEngine(sim, net, single_cable("L2", "S2"))
        engine.start()
        fwd, rev = net.cable("L2", "S2")
        assert not fwd.up and not rev.up
        assert [m["action"] for m in engine.markers] == ["link_down"]

    def test_future_events_apply_at_their_time(self, fabric):
        sim, net, _hosts = fabric
        plan = flap("L2", "S2", start=0.01, period=0.02, downtime=0.005, flaps=1)
        ChaosEngine(sim, net, plan).start()
        fwd, _rev = net.cable("L2", "S2")
        assert fwd.up
        sim.run(until=0.012)
        assert not fwd.up
        sim.run(until=0.02)
        assert fwd.up

    def test_flush_accounting_counts_queued_packets(self, fabric):
        from repro.net.packet import FlowKey, Packet

        sim, net, _hosts = fabric
        fwd, _rev = net.cable("L2", "S2")
        key = FlowKey(1, 2, 1000, 80)
        for i in range(5):
            fwd.send(Packet(key, payload_bytes=1460, seq=i))
        queued = len(fwd.queue)
        assert queued > 0
        engine = ChaosEngine(sim, net, single_cable("L2", "S2"))
        engine.start()
        assert engine.flushed_packets() == queued
        assert engine.markers[0]["flushed"] == queued

    def test_degrade_and_restore_return_exact_rate(self, fabric):
        sim, net, _hosts = fabric
        fwd, rev = net.cable("L2", "S2")
        original = fwd.rate_bps
        plan = degraded("L2", "S2", factor=0.25, time=0.0, duration=0.01)
        ChaosEngine(sim, net, plan).start()
        assert fwd.rate_bps == pytest.approx(original * 0.25)
        # degrading twice must not compound
        net.degrade_cable("L2", "S2", 0, factor=0.25)
        assert fwd.rate_bps == pytest.approx(original * 0.25)
        sim.run(until=0.02)
        assert fwd.rate_bps == original and rev.rate_bps == original

    def test_injections_emit_telemetry_events(self, fabric):
        sim, net, _hosts = fabric
        tel = Telemetry()
        net.cable("L2", "S2")[0].attach_telemetry(tel)
        plan = flap("L2", "S2", start=0.01, period=0.02, downtime=0.005, flaps=1)
        ChaosEngine(sim, net, plan, telemetry=tel).start()
        sim.run(until=0.05)
        types = [e.type for e in tel.events]
        assert types.count("chaos.inject") == 2
        # the link itself reports the transition too (satellite: legacy
        # helpers get timelines without an engine)
        assert "link.down" in types and "link.up" in types

    def test_finish_attributes_blackholes_on_permanent_faults(self, fabric):
        from repro.net.packet import FlowKey, Packet

        sim, net, _hosts = fabric
        engine = ChaosEngine(sim, net, single_cable("L2", "S2"))
        engine.start()
        fwd, _rev = net.cable("L2", "S2")
        key = FlowKey(1, 2, 1000, 80)
        for i in range(3):
            fwd.send(Packet(key, payload_bytes=1460, seq=i))
        engine.finish()
        assert engine.blackholed_packets() == 3
        assert engine.markers[-1]["action"] == "settle"

    def test_legacy_link_events_rebuild_windows(self, fabric):
        """A run instrumented only at the Link level (legacy scenario
        helpers) still yields windows offline."""
        sim, net, _hosts = fabric
        tel = Telemetry()
        fwd, rev = net.cable("L2", "S2")
        fwd.attach_telemetry(tel)
        rev.attach_telemetry(tel)
        sim.at(0.01, net.fail_cable, "L2", "S2")
        sim.at(0.03, net.recover_cable, "L2", "S2")
        sim.run(until=0.05)
        records = [e.to_dict() for e in tel.events]
        report = recovery_from_records(records, end_time=0.05)
        assert report is not None
        assert report.windows == [(0.01, 0.03)]


# ----------------------------------------------------------------------
# Recovery metric core
# ----------------------------------------------------------------------
class TestRecoveryMetrics:
    @staticmethod
    def _steady_flows(rate_per_s=1000, size=1500, start=0.0, end=1.0,
                      skip=lambda t: False):
        step = 1.0 / rate_per_s
        flows = []
        t = start
        while t < end:
            if not skip(t):
                flows.append(FlowSample(size=size, arrival=t,
                                        completion=t + step / 2))
            t += step
        return flows

    def test_never_dipped_reports_zero(self):
        flows = self._steady_flows()
        report = compute_recovery(flows, [(0.4, 0.5)], end_time=1.0)
        assert report.time_to_recover_s == 0.0

    def test_recovery_time_is_first_bin_back_over_threshold(self):
        # completions stop entirely in [0.4, 0.6): dips during the fault
        # window [0.4, 0.5) and stays low one bin past it
        flows = self._steady_flows(skip=lambda t: 0.4 <= t < 0.6)
        report = compute_recovery(flows, [(0.4, 0.5)], end_time=1.0,
                                  bin_width=0.1)
        assert report.time_to_recover_s == pytest.approx(0.2)

    def test_never_recovered_is_nan(self):
        flows = self._steady_flows(skip=lambda t: t >= 0.4)
        report = compute_recovery(flows, [(0.4, 0.5)], end_time=1.0)
        assert math.isnan(report.time_to_recover_s)

    def test_fault_at_t0_has_no_baseline(self):
        flows = self._steady_flows()
        report = compute_recovery(flows, [(0.0, 0.5)], end_time=1.0)
        assert math.isnan(report.pre_fault_goodput_bps)
        assert math.isnan(report.time_to_recover_s)

    def test_fct_inflation_compares_faulted_to_baseline(self):
        flows = [FlowSample(1500, t / 100, t / 100 + 0.001) for t in range(40)]
        flows += [FlowSample(1500, 0.41, 0.414)]  # 4x the baseline FCT
        report = compute_recovery(flows, [(0.405, 0.43)], end_time=1.0)
        assert report.fct_inflation == pytest.approx(4.0)
        assert report.fault_flows == 1

    def test_windows_clamp_to_run_end(self):
        flows = self._steady_flows(end=0.5)
        report = compute_recovery(flows, [(0.4, 2.0)], end_time=0.5)
        assert report.windows == [(0.4, 0.5)]
        assert report.fault_window_s == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Experiment integration + offline parity
# ----------------------------------------------------------------------
class TestExperimentIntegration:
    def test_asymmetric_flag_is_single_cable_sugar(self):
        plan = _quick(asymmetric=True).fault_plan()
        assert plan == single_cable("L2", "S2", 0, time=0.0)

    def test_chaos_plan_composes_with_asymmetric(self):
        cfg = _quick(asymmetric=True, chaos=single_cable("L1", "S1", time=0.01))
        plan = cfg.fault_plan()
        assert len(plan.events) == 2

    def test_run_with_chaos_produces_recovery_report(self):
        cfg = _quick(scheme="clove-ecn", jobs_per_client=10,
                     chaos=flap(start=0.022, period=0.01,
                                downtime=0.004, flaps=1))
        result = run_experiment(cfg)
        report = recovery_from_result(result)
        assert report is not None
        assert len(report.windows) == 1
        assert report.fault_window_s == pytest.approx(0.004)
        metrics = standard_metrics(result)
        assert metrics["chaos_fault_window_s"] == pytest.approx(0.004)

    def test_no_chaos_yields_nan_chaos_metrics(self):
        metrics = standard_metrics(run_experiment(_quick()))
        assert math.isnan(metrics["chaos_time_to_recover"])
        assert math.isnan(metrics["chaos_fault_window_s"])
        assert set(METRIC_KEYS) == set(metrics)

    def test_offline_report_matches_in_process(self, tmp_path):
        """The acceptance criterion: the CLI numbers are recomputable from
        the telemetry artifact alone."""
        tel = Telemetry()
        cfg = _quick(scheme="clove-ecn", load=0.5, jobs_per_client=40,
                     chaos=flap(start=0.022, period=0.01,
                                downtime=0.004, flaps=1))
        result = run_experiment(cfg, telemetry=tel)
        in_process = recovery_from_result(result)
        path = tmp_path / "tel.jsonl"
        tel.export_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        offline = recovery_from_records(records)
        assert offline is not None
        assert not math.isnan(in_process.fct_inflation)
        assert offline.windows == pytest.approx(in_process.windows)
        assert offline.pre_fault_goodput_bps == pytest.approx(
            in_process.pre_fault_goodput_bps)
        assert offline.fct_inflation == pytest.approx(in_process.fct_inflation)
        assert offline.time_to_recover_s == pytest.approx(
            in_process.time_to_recover_s, nan_ok=True)
        assert offline.lost_packets == in_process.lost_packets

    def test_multi_failure_with_live_path_completes_discovery(self):
        """A storm that leaves >= 1 path up must not deadlock Clove's
        path discovery (the run finishes and flows complete)."""
        cfg = _quick(scheme="clove-ecn", jobs_per_client=6,
                     chaos=multi_failure_plan(
                         (("L2", "S1", 0), ("L2", "S2", 0), ("L1", "S1", 0))))
        result = run_experiment(cfg)
        assert result.collector.completion_rate == pytest.approx(1.0)

    def test_clove_recovers_faster_than_ecmp_under_flap(self):
        """The headline behavioural claim, at a pinned configuration: a
        single 8 ms outage at 95% load makes ECMP's goodput dip below the
        recovery threshold while Clove-ECN reroutes around it (TTR 0)."""
        plan = flap(start=0.03, period=0.02, downtime=0.008, flaps=1)
        ttr = {}
        inflation = {}
        for scheme in ("clove-ecn", "ecmp"):
            cfg = ExperimentConfig(scheme=scheme, load=0.95, seed=1,
                                   jobs_per_client=260, chaos=plan)
            report = recovery_from_result(run_experiment(cfg), bin_width=0.002)
            ttr[scheme] = report.time_to_recover_s
            inflation[scheme] = report.fct_inflation
        assert not math.isnan(ttr["clove-ecn"])
        assert ttr["clove-ecn"] < ttr["ecmp"]
        assert inflation["clove-ecn"] < inflation["ecmp"]


# ----------------------------------------------------------------------
# Runner / cache interplay
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_chaos_changes_the_fingerprint(self):
        base = JobSpec.experiment(_quick()).fingerprint
        with_chaos = JobSpec.experiment(
            _quick(chaos=single_cable())).fingerprint
        assert with_chaos != base
        # ... and any event change changes it again
        shifted = JobSpec.experiment(
            _quick(chaos=single_cable(time=0.001))).fingerprint
        assert shifted not in (base, with_chaos)
        other_cable = JobSpec.experiment(
            _quick(chaos=single_cable("L1", "S1"))).fingerprint
        assert other_cable not in (base, with_chaos, shifted)

    def test_identical_plans_fingerprint_identically(self):
        a = JobSpec.experiment(_quick(chaos=flap(start=0.03)))
        b = JobSpec.experiment(_quick(chaos=flap(start=0.03)))
        assert a.fingerprint == b.fingerprint
        # a JSON round trip of the plan preserves the fingerprint too
        c = JobSpec.experiment(_quick(
            chaos=FaultPlan.from_json(flap(start=0.03).to_json())))
        assert c.fingerprint == a.fingerprint

    def test_fingerprint_stable_across_processes(self):
        """The cache key must not depend on interpreter state (hash seeds,
        dict order): a fresh process computes the same fingerprint."""
        code = (
            "from repro.runner import JobSpec\n"
            "from repro.harness.experiment import ExperimentConfig\n"
            "from repro.chaos import flap\n"
            "spec = JobSpec.experiment(ExperimentConfig(\n"
            "    scheme='ecmp', load=0.3, jobs_per_client=4,\n"
            "    clients_per_leaf=2, connections_per_client=1, seed=5,\n"
            "    chaos=flap(start=0.03)))\n"
            "print(spec.fingerprint)\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": src, "PYTHONHASHSEED": "321"},
        )
        here = JobSpec.experiment(_quick(chaos=flap(start=0.03))).fingerprint
        assert out.stdout.strip() == here

    def test_chaos_jobs_cache_and_replay(self, tmp_path):
        spec = JobSpec.experiment(
            _quick(scheme="clove-ecn", jobs_per_client=6,
                   chaos=flap(start=0.022, period=0.01,
                              downtime=0.004, flaps=1)))
        runner = RunnerConfig(cache_dir=tmp_path, progress=False)
        (first,) = run_jobs([spec], runner=runner)
        (second,) = run_jobs([spec], runner=runner)
        assert not first.cached and second.cached
        assert _metrics_equal(first.metrics, second.metrics)
        assert "chaos" in spec.label

    def test_schema_bump_invalidates_warm_cache(self, tmp_path, monkeypatch):
        from repro.runner import cache as cache_module
        from repro.runner import job as job_module

        spec = JobSpec.experiment(_quick(jobs_per_client=4))
        runner = RunnerConfig(cache_dir=tmp_path, progress=False)
        (first,) = run_jobs([spec], runner=runner)
        assert not first.cached
        # same code, warm cache: served from disk
        assert run_jobs([spec], runner=runner)[0].cached
        # simulate the next schema bump: old lines must be ignored
        monkeypatch.setattr(job_module, "SCHEMA_VERSION",
                            job_module.SCHEMA_VERSION + 1)
        monkeypatch.setattr(cache_module, "SCHEMA_VERSION",
                            cache_module.SCHEMA_VERSION + 1)
        cache = ResultCache(tmp_path)
        assert cache.get(spec.fingerprint) is None
        assert cache.stale_entries == 1

    def test_v1_cache_lines_are_stale_after_this_bump(self, tmp_path):
        """Lines written by the pre-chaos schema (v1) are never served."""
        path = tmp_path / "results.jsonl"
        path.write_text(json.dumps({
            "schema": 1, "fingerprint": "abc", "kind": "experiment",
            "metrics": {"avg_fct": 1.0},
        }) + "\n")
        cache = ResultCache(tmp_path)
        assert cache.get("abc") is None
        assert cache.stale_entries == 1

    def test_serial_and_parallel_chaos_runs_agree(self, tmp_path):
        specs = [
            JobSpec.experiment(
                _quick(scheme=scheme, jobs_per_client=6,
                       chaos=flap(start=0.022, period=0.01,
                                  downtime=0.004, flaps=1)))
            for scheme in ("ecmp", "clove-ecn")
        ]
        serial = run_jobs(specs, runner=RunnerConfig(jobs=1, progress=False))
        parallel = run_jobs(specs, runner=RunnerConfig(jobs=2, progress=False))
        for s, p in zip(serial, parallel):
            assert _metrics_equal(s.metrics, p.metrics)
