"""CLI usage-error contract: bad input exits 2 with a one-line stderr
message and never a traceback; readable-but-empty input exits 1.

``main()`` returns the exit code for handled errors; argparse and the
pre-flight loaders raise ``SystemExit`` instead — both shapes are pinned
here so scripts wrapping the CLI can rely on them.
"""

import json

import pytest

from repro.cli import main


def _exit_code(excinfo):
    code = excinfo.value.code
    return code if isinstance(code, int) else 1


def _assert_clean_stderr(capsys):
    """One-line diagnostic, no traceback; returns the stderr text."""
    err = capsys.readouterr().err
    assert err.strip(), "expected a diagnostic on stderr"
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1
    return err


# ----------------------------------------------------------------------
# --chaos plan files
# ----------------------------------------------------------------------
def test_missing_chaos_file_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "clove-ecn", "--chaos", str(tmp_path / "absent.json")])
    assert _exit_code(excinfo) == 2
    assert "cannot load fault plan" in _assert_clean_stderr(capsys)


def test_malformed_chaos_file_exits_2(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text("{ not json")
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "clove-ecn", "--chaos", str(plan)])
    assert _exit_code(excinfo) == 2
    assert "cannot load fault plan" in _assert_clean_stderr(capsys)


def test_invalid_chaos_event_exits_2(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps(
        {"events": [{"time": -1.0, "action": "link_down",
                     "a": "L1", "b": "S1"}]}
    ))
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "clove-ecn", "--chaos", str(plan)])
    assert _exit_code(excinfo) == 2
    _assert_clean_stderr(capsys)


def test_unknown_chaos_preset_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "clove-ecn", "--chaos-preset", "no-such-storm"])
    assert _exit_code(excinfo) == 2
    _assert_clean_stderr(capsys)


# ----------------------------------------------------------------------
# Unreadable artifacts across the offline subcommands
# ----------------------------------------------------------------------
def test_telemetry_unreadable_artifact_returns_2(tmp_path, capsys):
    assert main(["telemetry", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_telemetry_malformed_artifact_returns_2(tmp_path, capsys):
    artifact = tmp_path / "mangled.jsonl"
    artifact.write_text('{"kind": "counters", "values"\n')
    assert main(["telemetry", str(artifact)]) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_trace_summary_unreadable_artifact_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "summary", str(tmp_path / "absent.jsonl")])
    assert _exit_code(excinfo) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_chaos_report_unreadable_artifact_returns_2(tmp_path, capsys):
    assert main(["chaos", "report", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_audit_check_unreadable_artifact_returns_2(tmp_path, capsys):
    assert main(["audit", "check", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_audit_diff_unreadable_artifact_returns_2(tmp_path, capsys):
    readable = tmp_path / "a.jsonl"
    readable.write_text(json.dumps({"kind": "counters", "values": {}}) + "\n")
    assert main(["audit", "diff", str(readable),
                 str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in _assert_clean_stderr(capsys)


def test_bench_report_missing_dir_returns_2(tmp_path, capsys):
    assert main(["bench", "report",
                 "--dir", str(tmp_path / "no-such-dir")]) == 2
    _assert_clean_stderr(capsys)


# ----------------------------------------------------------------------
# argparse-level usage errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("argv", [
    ["run", "no-such-scheme"],
    ["run", "clove-ecn", "--no-such-flag"],
    ["audit"],                       # subcommand required
    ["audit", "run", "clove-ecn", "--audit", "loudly"],
    ["no-such-command"],
])
def test_argparse_usage_errors_exit_2(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert _exit_code(excinfo) == 2
    assert "Traceback" not in capsys.readouterr().err
