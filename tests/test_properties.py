"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.discovery import select_disjoint
from repro.core.flowlet import FlowletTable
from repro.core.weights import WeightedPathTable
from repro.metrics.collector import percentile
from repro.net.dre import DiscountingRateEstimator
from repro.net.hashing import EcmpHasher
from repro.net.packet import FlowKey
from repro.net.queue import DropTailQueue, Packet
from repro.workloads.distributions import EmpiricalCdf
import random


flow_keys = st.builds(
    FlowKey,
    src_ip=st.integers(0, 2**16),
    dst_ip=st.integers(0, 2**16),
    src_port=st.integers(0, 65535),
    dst_port=st.integers(0, 65535),
    proto=st.sampled_from([6, 17]),
)


class TestHashingProperties:
    @given(flow_keys, st.integers(1, 64), st.integers(0, 2**32))
    def test_select_in_range_and_deterministic(self, key, n, seed):
        hasher = EcmpHasher(seed)
        choice = hasher.select(key, n)
        assert 0 <= choice < n
        assert hasher.select(key, n) == choice

    @given(flow_keys)
    def test_reverse_is_involution(self, key):
        assert key.reversed().reversed() == key


class TestWeightProperties:
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=60),
        st.floats(0.05, 0.9),
    )
    def test_weights_remain_normalized_and_positive(self, marks, reduction):
        table = WeightedPathTable(reduction_factor=reduction)
        ports = [100, 200, 300, 400]
        table.set_paths(1, ports, [("a",), ("b",), ("c",), ("d",)])
        for i, index in enumerate(marks):
            table.mark_congested(1, ports[index], now=i * 1e-5)
            weights = table.weights_for(1)
            assert math.isclose(sum(weights.values()), 1.0, rel_tol=1e-9)
            assert all(w > 0 for w in weights.values())

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8))
    def test_wrr_long_run_frequency_matches_weights(self, raw):
        total = sum(raw)
        if total <= 0:
            raw = [1.0] * len(raw)
            total = float(len(raw))
        table = WeightedPathTable()
        ports = list(range(len(raw)))
        table.set_paths(1, ports, [(f"t{i}",) for i in ports])
        table.set_static_weights(1, raw)
        n = 2000
        counts = {p: 0 for p in ports}
        for _ in range(n):
            counts[table.next_port(1)] += 1
        weights = table.weights_for(1)
        for port in ports:
            assert abs(counts[port] / n - weights[port]) < 0.02


class TestFlowletProperties:
    @given(st.lists(st.floats(1e-7, 1e-2), min_size=1, max_size=200))
    def test_flowlet_ids_monotonic(self, gaps):
        table = FlowletTable(gap=1e-4)
        key = ("flow",)
        now = 0.0
        last_id = -1
        for gap in gaps:
            now += gap
            port, _fid = table.lookup(key, now)
            if port is None:
                fid = table.assign(key, 1, now)
                assert fid > last_id
                last_id = fid

    @given(st.lists(st.floats(0, 9e-5), min_size=1, max_size=100))
    def test_no_new_flowlet_within_gap(self, deltas):
        table = FlowletTable(gap=1e-4)
        key = ("flow",)
        table.assign(key, 7, 0.0)
        now = 0.0
        for delta in deltas:
            now += min(delta, 9e-5)
            port, _ = table.lookup(key, now)
            assert port == 7


class TestQueueProperties:
    @given(st.lists(st.sampled_from(["enq", "deq"]), min_size=1, max_size=300))
    def test_occupancy_invariants(self, ops):
        queue = DropTailQueue(capacity_packets=16, ecn_threshold_packets=4)
        flow = FlowKey(1, 2, 3, 4)
        model = 0
        for op in ops:
            if op == "enq":
                packet = Packet(flow, payload_bytes=100)
                if queue.enqueue(packet, 0.0):
                    model += 1
            else:
                got = queue.dequeue(0.0)
                if got is not None:
                    model -= 1
            assert len(queue) == model
            assert 0 <= len(queue) <= 16
            assert queue.byte_count >= 0

    @given(st.integers(1, 50), st.integers(0, 60))
    def test_never_exceeds_capacity(self, capacity, offered):
        queue = DropTailQueue(capacity_packets=capacity, ecn_threshold_packets=None)
        flow = FlowKey(1, 2, 3, 4)
        for _ in range(offered):
            queue.enqueue(Packet(flow, payload_bytes=10), 0.0)
        assert len(queue) <= capacity
        assert queue.stats.dropped == max(0, offered - capacity)


class TestDreProperties:
    @given(
        st.lists(st.tuples(st.integers(1, 10_000), st.floats(0, 1e-3)),
                 min_size=1, max_size=100)
    )
    def test_utilization_nonnegative_and_decaying(self, events):
        dre = DiscountingRateEstimator(rate_bps=1e9)
        now = 0.0
        for nbytes, gap in events:
            now += gap
            dre.record(nbytes, now)
            assert dre.utilization(now) >= 0.0
        later = dre.utilization(now + 0.1)
        assert later <= dre.utilization(now) + 1e-12


class TestDisjointSelectionProperties:
    @given(
        st.dictionaries(
            st.integers(1024, 65535),
            st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=4).map(tuple),
            min_size=1,
            max_size=20,
        ),
        st.integers(1, 8),
    )
    def test_selection_unique_and_bounded(self, candidates, k):
        selection = select_disjoint(candidates, k)
        traces = [t for _p, t in selection]
        assert len(traces) == len(set(traces))      # no duplicate paths
        assert len(selection) <= k
        assert all(p in candidates for p, _t in selection)
        unique_traces = len(set(candidates.values()))
        assert len(selection) == min(k, unique_traces)


class TestDistributionProperties:
    @given(st.integers(0, 2**31), st.floats(0.001, 10.0))
    def test_samples_scale_with_support(self, seed, scale):
        dist = EmpiricalCdf([(1_000, 0.0), (10_000, 0.5), (100_000, 1.0)], scale=scale)
        rng = random.Random(seed)
        sample = dist.sample(rng)
        assert 1_000 * scale * 0.99 <= sample <= 100_000 * scale * 1.01 or sample == 1


class TestPercentileProperties:
    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=500),
           st.floats(0.1, 100.0))
    def test_percentile_is_member_and_bounded(self, values, q):
        values.sort()
        result = percentile(values, q)
        assert result in values
        assert values[0] <= result <= values[-1]

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_percentile_monotone_in_q(self, values):
        values.sort()
        assert percentile(values, 50) <= percentile(values, 99)
