"""Tests for DCTCP and Presto-style reassembly in the virtual switch."""

import pytest

from repro.baselines.presto import PrestoPolicy
from repro.net.packet import FlowKey, MSS, make_ack_packet, make_data_packet
from repro.transport.dctcp import DctcpSender
from repro.transport.tcp import FLAG_ECE, TcpReceiver

from tests.conftest import make_fabric


def _open_dctcp(hosts):
    src, dst = hosts["h1_0"], hosts["h2_0"]
    flow = FlowKey(src.ip, dst.ip, 4000, 80)
    sender = DctcpSender(src.sim, src, flow)
    receiver = TcpReceiver(dst.sim, dst, flow)
    dst.register_endpoint(flow, receiver)
    src.register_endpoint(flow.reversed(), sender)
    return sender, receiver


class TestDctcp:
    def test_transfer_completes(self, fabric):
        sim, net, hosts = fabric
        sender, receiver = _open_dctcp(hosts)
        sender.send(500_000)
        sim.run(until=2.0)
        assert receiver.rcv_nxt == 500_000

    def test_alpha_decays_without_marks(self, fabric):
        sim, net, hosts = fabric
        sender, receiver = _open_dctcp(hosts)
        sender.send(5_000_000)  # enough windows for the EWMA to move
        sim.run(until=2.0)
        # No marks anywhere: alpha (initialized to 1) must have decayed.
        assert sender.alpha < 0.5

    def test_fractional_reduction_gentler_than_halving(self, fabric):
        sim, net, hosts = fabric
        sender, _receiver = _open_dctcp(hosts)
        sender.send(100_000_000)
        sim.run(until=0.001)
        sender.alpha = 0.1
        cwnd = sender.cwnd
        flow = sender.flow.reversed()
        sender.on_packet(
            make_ack_packet(flow, sender.snd_una + MSS, sim.now, flags=FLAG_ECE)
        )
        # cwnd *= (1 - alpha/2) = 0.95: a 5% cut, not 50%.
        assert sender.cwnd == pytest.approx(cwnd * 0.95, rel=0.02)

    def test_alpha_rises_under_persistent_marking(self):
        sim, net, hosts = make_fabric(ecn_threshold_packets=0)
        sender, receiver = _open_dctcp(hosts)
        # Bypass the overlay (which would mask CE): mark inner directly by
        # running without policies but forcing ECT on inner packets.
        orig = hosts["h1_0"].send_from_guest
        def ect_everything(packet):
            packet.ect = True
            orig(packet)
        hosts["h1_0"].send_from_guest = ect_everything
        sender.send(2_000_000)
        sim.run(until=2.0)
        assert sender.ecn_reductions > 0
        assert sender.alpha > 0.05


class TestPrestoReassemblyPath:
    def _presto_fabric(self):
        policies = {}

        def factory(name, index):
            policies[name] = PrestoPolicy(flowcell_bytes=2 * MSS)
            return policies[name]

        sim, net, hosts = make_fabric(policy_factory=factory)
        # Install paths directly (skip discovery for unit scope).
        from repro.net.packet import STT_DST_PORT
        for name, host in hosts.items():
            for other, o in hosts.items():
                if other != name:
                    leaf = net.switches["L1" if other.startswith("h1") else "L2"]
                    group = leaf.routes[o.ip]
                    ports, seen = [], set()
                    for sport in range(49152, 49152 + 300):
                        key = FlowKey(host.ip, o.ip, sport, STT_DST_PORT)
                        idx = leaf.hasher.select(key, len(group))
                        if idx not in seen:
                            seen.add(idx)
                            ports.append(sport)
                        if len(ports) == len(group):
                            break
                    policies[name].set_paths(o.ip, ports, [(f"p{i}",) for i in range(len(ports))])
        return sim, net, hosts, policies

    def test_flow_completes_over_sprayed_cells(self):
        sim, net, hosts, policies = self._presto_fabric()
        from repro.transport.tcp import open_connection
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(1_000_000, lambda: done.append(sim.now))
        sim.run(until=2.0)
        assert done

    def test_receiver_sees_in_order_despite_spraying(self):
        sim, net, hosts, policies = self._presto_fabric()
        from repro.transport.tcp import open_connection
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(500_000, lambda: None)
        sim.run(until=2.0)
        # Reassembly in the vswitch should hide almost all reordering from
        # the guest: out-of-order arrivals at the TCP layer stay rare.
        receiver = connection.receiver
        assert receiver.rcv_nxt == 500_000
        assert receiver.ooo_packets <= receiver.packets_received * 0.05

    def test_flowcells_used_multiple_paths(self):
        sim, net, hosts, policies = self._presto_fabric()
        from repro.transport.tcp import open_connection
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(500_000, lambda: None)
        sim.run(until=2.0)
        assert policies["h1_0"].flowcells_started > 10
