"""Unit tests for drop-tail queues and links."""

import pytest

from repro.net.link import Link
from repro.net.packet import FlowKey, Packet, make_data_packet
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator


def _packet(payload=1460, ect=False):
    packet = make_data_packet(FlowKey(1, 2, 3, 4), 0, payload, 0.0)
    packet.ect = ect
    return packet


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10, ecn_threshold_packets=None)
        first, second = _packet(), _packet()
        queue.enqueue(first, 0.0)
        queue.enqueue(second, 0.0)
        assert queue.dequeue(0.0) is first
        assert queue.dequeue(0.0) is second
        assert queue.dequeue(0.0) is None

    def test_drop_when_full(self):
        queue = DropTailQueue(capacity_packets=2, ecn_threshold_packets=None)
        assert queue.enqueue(_packet(), 0.0)
        assert queue.enqueue(_packet(), 0.0)
        assert not queue.enqueue(_packet(), 0.0)
        assert queue.stats.dropped == 1
        assert queue.stats.enqueued == 2

    def test_ecn_marked_above_threshold_for_ect_packets(self):
        queue = DropTailQueue(capacity_packets=100, ecn_threshold_packets=2)
        packets = [_packet(ect=True) for _ in range(4)]
        for packet in packets:
            queue.enqueue(packet, 0.0)
        # Packets 0 and 1 saw queue lengths 0 and 1 (below threshold).
        assert not packets[0].ce and not packets[1].ce
        assert packets[2].ce and packets[3].ce
        assert queue.stats.ecn_marked == 2

    def test_non_ect_packets_never_marked(self):
        queue = DropTailQueue(capacity_packets=100, ecn_threshold_packets=0)
        packet = _packet(ect=False)
        queue.enqueue(packet, 0.0)
        assert not packet.ce

    def test_byte_count_tracks_contents(self):
        queue = DropTailQueue(capacity_packets=10, ecn_threshold_packets=None)
        packet = _packet()
        queue.enqueue(packet, 0.0)
        assert queue.byte_count == packet.size
        queue.dequeue(0.0)
        assert queue.byte_count == 0

    def test_queue_delay_accounting(self):
        queue = DropTailQueue(capacity_packets=10, ecn_threshold_packets=None)
        queue.enqueue(_packet(), 0.0)
        queue.dequeue(2.5)
        assert queue.stats.total_queue_delay == pytest.approx(2.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0)


class TestLink:
    def test_serialization_plus_propagation_delay(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=10e-6)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        packet = _packet(payload=1460)  # 1500B on wire
        link.send(packet)
        sim.run()
        expected = packet.size * 8 / 1e9 + 10e-6
        assert arrivals == [pytest.approx(expected)]

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        a, b = _packet(), _packet()
        link.send(a)
        link.send(b)
        sim.run()
        tx = a.size * 8 / 1e9
        assert arrivals[0] == pytest.approx(tx)
        assert arrivals[1] == pytest.approx(2 * tx)

    def test_down_link_discards(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(p))
        link.fail()
        assert not link.send(_packet())
        sim.run()
        assert arrivals == []

    def test_fail_flushes_queue(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        link.connect(lambda p: None)
        link.send(_packet())
        link.send(_packet())
        link.fail()
        assert link.queue.is_empty

    def test_recover_resumes_transmission(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(p))
        link.fail()
        link.recover()
        assert link.send(_packet())
        sim.run()
        assert len(arrivals) == 1

    def test_tx_counters(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        link.connect(lambda p: None)
        packet = _packet()
        link.send(packet)
        sim.run()
        assert link.tx_packets == 1
        assert link.tx_bytes == packet.size

    def test_dre_sees_traffic(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e9, delay_s=0.0)
        link.connect(lambda p: None)
        for _ in range(50):
            link.send(_packet())
        sim.run(until=1e-5)
        assert link.utilization() > 0.0

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "l", rate_bps=0, delay_s=0.0)
        with pytest.raises(ValueError):
            Link(sim, "l", rate_bps=1e9, delay_s=-1.0)
