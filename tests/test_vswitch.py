"""Tests for the virtual switch: encapsulation, echo reflection, masking."""

import pytest

from repro.core.clove import CloveEcnPolicy, CloveIntPolicy, CloveParams
from repro.hypervisor.policy import LoadBalancer, PathFeedback
from repro.net.packet import FlowKey, Packet, STT_DST_PORT, make_data_packet
from repro.transport.tcp import FLAG_ECE, open_connection

from tests.conftest import make_fabric


class FixedPortPolicy(LoadBalancer):
    """Test double: constant source port, records feedback."""

    wants_ecn = True

    def __init__(self, port=55555):
        self.port = port
        self.feedback = []

    def select_source_port(self, inner, packet, now):
        return self.port

    def on_path_feedback(self, feedback, now):
        self.feedback.append(feedback)


def _overlay_fabric(policy_cls=FixedPortPolicy, **kwargs):
    policies = {}

    def factory(name, index):
        policies[name] = policy_cls()
        return policies[name]

    sim, net, hosts = make_fabric(policy_factory=factory, **kwargs)
    return sim, net, hosts, policies


class TestEncapsulation:
    def test_guest_traffic_is_tunnelled(self):
        sim, net, hosts, policies = _overlay_fabric()
        seen = []
        orig = hosts["h2_0"].vswitch.receive_encapsulated
        hosts["h2_0"].vswitch.receive_encapsulated = lambda p: (seen.append(p.outer), orig(p))
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(10_000, lambda: None)
        sim.run(until=0.1)
        assert seen
        outer = seen[0]
        assert outer.src_port == 55555
        assert outer.dst_port == STT_DST_PORT
        assert outer.src_ip == hosts["h1_0"].ip
        assert outer.dst_ip == hosts["h2_0"].ip

    def test_flow_completes_through_overlay(self):
        sim, net, hosts, policies = _overlay_fabric()
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(200_000, lambda: done.append(sim.now))
        sim.run(until=1.0)
        assert done

    def test_guest_never_sees_ce(self):
        # Force marking with a 0 threshold: every ECT packet gets CE.
        sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=0)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        done = []
        connection.start_flow(100_000, lambda: done.append(True))
        sim.run(until=1.0)
        assert done
        # The receiver's guest stack must never have latched ECE: the
        # hypervisor strips CE before delivery.
        assert connection.receiver.ece_latched is False
        assert connection.sender.ecn_reductions == 0


class TestEchoReflection:
    def test_ce_is_reflected_to_sender_policy(self):
        sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=0)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(100_000, lambda: None)
        sim.run(until=1.0)
        feedback = policies["h1_0"].feedback
        assert feedback, "no ECN echo reached the sending policy"
        assert all(f.port == 55555 for f in feedback)
        assert any(f.congested for f in feedback)
        # Feedback is about paths towards the data's destination.
        assert all(f.dst_ip == hosts["h2_0"].ip for f in feedback)

    def test_no_marks_no_echo(self):
        sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=None)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(100_000, lambda: None)
        sim.run(until=1.0)
        assert not any(f.congested for f in policies["h1_0"].feedback)

    def test_relay_interval_rate_limits_echoes(self):
        results = {}
        for interval in (0.0, 1.0):
            sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=0)
            for host in hosts.values():
                host.vswitch.ecn_relay_interval = interval
            connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
            connection.start_flow(100_000, lambda: None)
            sim.run(until=1.0)
            results[interval] = sum(1 for f in policies["h1_0"].feedback if f.congested)
        assert results[1.0] < results[0.0]
        assert results[1.0] >= 1


class TestIntEcho:
    def test_int_utilization_echoed(self):
        policies = {}

        def factory(name, index):
            policies[name] = CloveIntPolicy(CloveParams(flowlet_gap=1e-3))
            return policies[name]

        sim, net, hosts = make_fabric(policy_factory=factory, int_capable=True)
        policy = policies["h1_0"]
        dst = hosts["h2_0"].ip
        policy.set_paths(dst, [50001, 50002], [("a",), ("b",)])
        policies["h2_0"].set_paths(hosts["h1_0"].ip, [50001], [("r",)])
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(500_000, lambda: None)
        sim.run(until=1.0)
        utils = [policy.weights.util_of(dst, p) for p in (50001, 50002)]
        assert any(u > 0 for u in utils), "no INT utilization echoed back"


class TestGuestEceInjection:
    def test_ece_injected_when_all_paths_congested(self):
        sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=0)

        # Make the sending host's policy report "everything is congested".
        policies["h1_0"].all_paths_congested = lambda dst, now: True
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(200_000, lambda: None)
        sim.run(until=1.0)
        assert hosts["h1_0"].vswitch.guest_ecn_injected > 0
        assert connection.sender.ecn_reductions > 0

    def test_no_injection_when_any_path_clear(self):
        sim, net, hosts, policies = _overlay_fabric(ecn_threshold_packets=0)
        connection = open_connection(hosts["h1_0"], hosts["h2_0"], 1000, 80)
        connection.start_flow(200_000, lambda: None)
        sim.run(until=1.0)
        assert hosts["h1_0"].vswitch.guest_ecn_injected == 0


class TestCloveEcnEndToEnd:
    def test_weights_shift_away_from_congested_path(self):
        policies = {}

        def factory(name, index):
            policies[name] = CloveEcnPolicy(CloveParams(flowlet_gap=1e-4))
            return policies[name]

        sim, net, hosts = make_fabric(policy_factory=factory, ecn_threshold_packets=0)
        src, dst = hosts["h1_0"], hosts["h2_0"]
        policy = policies["h1_0"]
        # Find real ports for two distinct fabric paths via the leaf hash.
        leaf = net.switches["L1"]
        group = leaf.routes[dst.ip]
        ports_by_path = {}
        for sport in range(49152, 49152 + 200):
            key = FlowKey(src.ip, dst.ip, sport, STT_DST_PORT)
            index = leaf.hasher.select(key, len(group))
            ports_by_path.setdefault(index, sport)
            if len(ports_by_path) == len(group):
                break
        ports = list(ports_by_path.values())[:4]
        policy.set_paths(dst.ip, ports, [(f"p{i}",) for i in range(len(ports))])
        policies["h2_0"].set_paths(src.ip, [50001], [("r",)])
        connection = open_connection(src, dst, 1000, 80)
        connection.start_flow(3_000_000, lambda: None)
        sim.run(until=1.0)
        assert policy.weights.weight_reductions > 0
