"""Integration tests for the experiment harness (small, fast configs)."""

import math

import pytest

from repro.harness.experiment import (
    ExperimentConfig,
    SCHEMES,
    default_topology,
    estimate_rtt,
    ideal_path_weights,
    run_experiment,
)
from repro.harness.sweep import average_over_seeds, format_series_table, sweep_loads


def _quick(scheme="ecmp", **overrides) -> ExperimentConfig:
    defaults = dict(
        scheme=scheme,
        load=0.4,
        jobs_per_client=6,
        clients_per_leaf=3,
        connections_per_client=1,
        seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_completes_all_jobs(self, scheme):
        result = run_experiment(_quick(scheme))
        assert result.collector.completion_rate == 1.0
        assert result.avg_fct > 0

    @pytest.mark.parametrize("scheme", ["ecmp", "clove-ecn", "conga"])
    def test_asymmetric_variant_completes(self, scheme):
        result = run_experiment(_quick(scheme, asymmetric=True))
        assert result.collector.completion_rate == 1.0

    def test_same_seed_same_workload_across_schemes(self):
        a = run_experiment(_quick("ecmp"))
        b = run_experiment(_quick("clove-ecn"))
        sizes_a = [j.size for j in a.collector.jobs]
        sizes_b = [j.size for j in b.collector.jobs]
        assert sizes_a == sizes_b
        arrivals_a = [j.arrival for j in a.collector.jobs]
        arrivals_b = [j.arrival for j in b.collector.jobs]
        assert arrivals_a == pytest.approx(arrivals_b)

    def test_same_config_is_deterministic(self):
        a = run_experiment(_quick("clove-ecn"))
        b = run_experiment(_quick("clove-ecn"))
        assert a.avg_fct == pytest.approx(b.avg_fct)
        assert a.wall_events == b.wall_events

    def test_different_seeds_differ(self):
        a = run_experiment(_quick("ecmp", seed=1))
        b = run_experiment(_quick("ecmp", seed=2))
        assert a.avg_fct != b.avg_fct

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(_quick("bogus"))

    @pytest.mark.parametrize("workload", ["data-mining", "enterprise"])
    def test_alternative_workloads(self, workload):
        result = run_experiment(_quick("clove-ecn", workload=workload,
                                       flow_scale=1 / 40))
        assert result.collector.completion_rate == 1.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(_quick("ecmp", workload="bogus"))

    def test_asymmetric_fails_the_cable(self):
        result = run_experiment(_quick(asymmetric=True))
        assert not result.net.links[("S2", "L2")][0].up
        assert result.net.links[("S2", "L2")][1].up

    def test_discovery_ran_for_clove(self):
        result = run_experiment(_quick("clove-ecn"))
        probers = [h.prober for h in result.hosts.values() if h.prober is not None]
        assert probers
        assert any(p.rounds_completed > 0 for p in probers)

    def test_no_discovery_for_ecmp(self):
        result = run_experiment(_quick("ecmp"))
        assert all(h.prober is None for h in result.hosts.values())


class TestEstimateRtt:
    def test_positive_and_small(self):
        rtt = estimate_rtt(default_topology())
        assert 1e-6 < rtt < 1e-3

    def test_loaded_greater_than_unloaded(self):
        topo = default_topology()
        assert estimate_rtt(topo, loaded=True) > estimate_rtt(topo, loaded=False)


class TestIdealPathWeights:
    def test_symmetric_is_uniform(self):
        result = run_experiment(_quick("ecmp"))
        traces = [
            ("h1_0->L1#0", "L1->S1#0", "S1->L2#0"),
            ("h1_0->L1#0", "L1->S1#1", "S1->L2#1"),
            ("h1_0->L1#0", "L1->S2#0", "S2->L2#0"),
            ("h1_0->L1#0", "L1->S2#1", "S2->L2#1"),
        ]
        weights = ideal_path_weights(result.net, traces)
        assert weights == pytest.approx([0.25] * 4)

    def test_asymmetric_matches_paper_weights(self):
        result = run_experiment(_quick("ecmp", asymmetric=True))
        # After the failure the two S2 paths share the surviving cable.
        traces = [
            ("h1_0->L1#0", "L1->S1#0", "S1->L2#0"),
            ("h1_0->L1#0", "L1->S1#1", "S1->L2#1"),
            ("h1_0->L1#0", "L1->S2#0", "S2->L2#1"),
            ("h1_0->L1#0", "L1->S2#1", "S2->L2#1"),
        ]
        weights = ideal_path_weights(result.net, traces)
        assert weights == pytest.approx([1 / 3, 1 / 3, 1 / 6, 1 / 6], abs=0.01)


class TestSweep:
    def test_sweep_structure(self):
        base = _quick("ecmp", jobs_per_client=4, clients_per_leaf=2)
        series = sweep_loads(base, ["ecmp"], [0.2, 0.4], seeds=[1])
        assert list(series) == ["ecmp"]
        assert [load for load, _ in series["ecmp"]] == [0.2, 0.4]
        assert all(not math.isnan(v) for _, v in series["ecmp"])

    def test_average_over_seeds(self):
        base = _quick("ecmp", jobs_per_client=4, clients_per_leaf=2)
        value = average_over_seeds(base, seeds=[1, 2])
        assert value > 0

    def test_format_series_table(self):
        series = {"ecmp": [(0.2, 0.001), (0.4, 0.002)], "clove-ecn": [(0.2, 0.001), (0.4, 0.0015)]}
        text = format_series_table(series, scale=1000.0)
        assert "ecmp" in text and "clove-ecn" in text
        assert "20" in text and "40" in text

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            average_over_seeds(_quick(), seeds=[])
