"""Tests for traceroute path discovery (Section 3.1)."""

import random

import pytest

from repro.core.discovery import DiscoveryConfig, PathDiscovery, select_disjoint
from repro.hypervisor.host import Host

from tests.conftest import make_fabric


class TestSelectDisjoint:
    def test_dedupes_identical_traces(self):
        candidates = {
            1: ("a", "b"),
            2: ("a", "b"),   # same path, different port
            3: ("c", "d"),
        }
        selection = select_disjoint(candidates, k=4)
        assert len(selection) == 2
        assert {trace for _p, trace in selection} == {("a", "b"), ("c", "d")}

    def test_prefers_disjoint_paths(self):
        candidates = {
            1: ("up", "x1", "y1"),
            2: ("up", "x1", "y2"),   # shares x1 with port 1
            3: ("up", "x2", "y3"),   # disjoint from port 1 (except "up")
            4: ("up", "x2", "y4"),
        }
        selection = select_disjoint(candidates, k=2)
        traces = [t for _p, t in selection]
        assert ("up", "x1", "y1") in traces
        assert ("up", "x2", "y3") in traces

    def test_k_limits_selection(self):
        candidates = {i: (f"l{i}",) for i in range(10)}
        assert len(select_disjoint(candidates, k=3)) == 3

    def test_deterministic_tie_break_by_port(self):
        candidates = {5: ("a",), 3: ("b",), 9: ("c",)}
        first = select_disjoint(candidates, k=1)
        assert first[0][0] == 3  # lowest port wins ties

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            select_disjoint({1: ("a",)}, k=0)


def _fabric_with_probers(asymmetric=False, **disc_kwargs):
    sim, net, hosts = make_fabric(hosts_per_leaf=2)
    if asymmetric:
        net.fail_cable("L2", "S2", 0)
    updates = {}
    for name, host in hosts.items():
        def _update(dst, ports, traces, _n=name):
            updates.setdefault(_n, {})[dst] = (ports, traces)
        host.prober = PathDiscovery(
            sim, host, random.Random(hash(name) & 0xFFFF),
            config=DiscoveryConfig(
                k_paths=4, n_candidate_ports=24, max_ttl=5,
                round_timeout=2e-3, **disc_kwargs,
            ),
            on_update=_update,
        )
    return sim, net, hosts, updates


class TestPathDiscovery:
    def test_discovers_four_disjoint_paths_cross_leaf(self):
        sim, net, hosts, updates = _fabric_with_probers()
        dst = net.host_ip("h2_0")
        hosts["h1_0"].prober.notice_destination(dst)
        sim.run(until=0.02)
        ports, traces = updates["h1_0"][dst]
        assert len(ports) == 4
        # All four fabric paths are distinct and pairwise disjoint in the
        # leaf->spine and spine->leaf links.
        fabric_legs = [tuple(l for l in t if "->" in l and not l.startswith("h")) for t in traces]
        assert len(set(fabric_legs)) == 4
        seen_links = [link for legs in fabric_legs for link in legs]
        assert len(seen_links) == len(set(seen_links))

    def test_same_leaf_destination_single_path(self):
        sim, net, hosts, updates = _fabric_with_probers()
        dst = net.host_ip("h1_1")
        hosts["h1_0"].prober.notice_destination(dst)
        sim.run(until=0.02)
        ports, traces = updates["h1_0"][dst]
        assert len(ports) == 1

    def test_asymmetric_failure_reduces_distinct_paths(self):
        sim, net, hosts, updates = _fabric_with_probers(asymmetric=True)
        dst = net.host_ip("h2_0")
        hosts["h1_0"].prober.notice_destination(dst)
        sim.run(until=0.02)
        ports, traces = updates["h1_0"][dst]
        # Paths via S2 collapse onto the single surviving cable: the two
        # S1 paths stay disjoint, S2 paths share the S2->L2 downlink.
        assert 3 <= len(ports) <= 4
        downlinks = [l for t in traces for l in t if l.startswith("S2->L2")]
        assert all(d == "S2->L2#1" for d in downlinks)

    def test_reprobe_after_failure_updates_mapping(self):
        sim, net, hosts, updates = _fabric_with_probers(probe_interval=0.05)
        dst = net.host_ip("h2_0")
        hosts["h1_0"].prober.notice_destination(dst)
        sim.run(until=0.02)
        _ports, traces_before = updates["h1_0"][dst]
        net.fail_cable("L2", "S2", 0)
        sim.run(until=0.2)  # at least one reprobe round fires
        _ports, traces_after = updates["h1_0"][dst]
        assert traces_before != traces_after
        assert all("S2->L2#0" not in t for t in traces_after)

    def test_notice_is_idempotent(self):
        sim, net, hosts, updates = _fabric_with_probers()
        dst = net.host_ip("h2_0")
        prober = hosts["h1_0"].prober
        prober.notice_destination(dst)
        probes_first = prober.probes_sent
        prober.notice_destination(dst)
        assert prober.probes_sent == probes_first

    def test_own_ip_ignored(self):
        sim, net, hosts, updates = _fabric_with_probers()
        prober = hosts["h1_0"].prober
        prober.notice_destination(hosts["h1_0"].ip)
        sim.run(until=0.02)
        assert prober.probes_sent == 0

    def test_paths_for_returns_latest_selection(self):
        sim, net, hosts, updates = _fabric_with_probers()
        dst = net.host_ip("h2_0")
        hosts["h1_0"].prober.notice_destination(dst)
        sim.run(until=0.02)
        selection = hosts["h1_0"].prober.paths_for(dst)
        assert selection == [
            (p, t) for p, t in zip(*updates["h1_0"][dst])
        ]


class TestRoundLifecycle:
    """Hard per-round deadlines: a mid-round link failure flushes probes,
    but the round must still resolve and the reprobe chain stay alive."""

    def test_link_down_mid_round_resolves_without_deadlock(self):
        sim, net, hosts, updates = _fabric_with_probers(probe_interval=0.05)
        dst = net.host_ip("h2_0")
        prober = hosts["h1_0"].prober
        prober.notice_destination(dst)
        assert prober.round_in_flight(dst)
        sim.run(until=0.0002)          # mid-round: probes still pacing out
        net.fail_cable("L2", "S2", 0)  # flushes queued probes, kills replies
        sim.run(until=0.01)
        # The deadline fired: the round resolved despite the lost probes.
        assert not prober.round_in_flight(dst)
        assert prober.rounds_completed >= 1
        # The periodic reprobe chain survived the mid-round failure...
        completed = prober.rounds_completed
        sim.run(until=0.08)
        assert prober.rounds_completed > completed
        # ...and the refreshed mapping routes around the dead cable.
        _ports, traces = updates["h1_0"][dst]
        assert traces
        assert all("S2->L2#0" not in trace for trace in traces)

    def test_start_round_is_single_flight(self):
        sim, net, hosts, _updates = _fabric_with_probers()
        dst = net.host_ip("h2_0")
        prober = hosts["h1_0"].prober
        assert prober.start_round(dst)
        assert not prober.start_round(dst)   # already in flight
        sim.run(until=0.01)
        assert not prober.round_in_flight(dst)
        assert prober.start_round(dst)       # resolved rounds can restart

    def test_cancel_round_rearms_watched_destinations(self):
        sim, net, hosts, updates = _fabric_with_probers(probe_interval=0.01)
        dst = net.host_ip("h2_0")
        prober = hosts["h1_0"].prober
        prober.notice_destination(dst)
        assert prober.cancel_round(dst)
        assert not prober.round_in_flight(dst)
        assert not prober.cancel_round(dst)  # nothing left to cancel
        # A cancelled round must not kill discovery: the reprobe fires.
        sim.run(until=0.05)
        assert prober.rounds_completed >= 1
        assert dst in updates.get("h1_0", {})
